package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The job journal makes aegisd restart-survivable (DESIGN.md §15): every
// job lifecycle transition is appended to a single JSONL file so a
// restarted daemon serves completed results byte-identically and
// re-enqueues interrupted jobs (which then resume from the shard cache)
// instead of forgetting everything it ever accepted.
//
// Framing: one record per line, `<crc32-hex> <payload-json>\n`, where the
// CRC (IEEE) covers exactly the payload bytes.  The frame is what makes
// replay after kill -9 safe: a torn tail (a final line without its
// newline) is truncated away on reopen, and a corrupted line — a CRC
// mismatch or unparseable payload — is skipped without giving up on the
// intact fully-framed records after it.
//
// Durability: every append is flushed to the OS (so a crashed *process*
// loses nothing), and terminal records additionally fsync (so a crashed
// *machine* can lose at most the queued/running tail, never a completed
// result that a client may already have observed).

// JournalSchema identifies the journal file format.  Bump the suffix on
// any backwards-incompatible change, the same discipline as aegis.job
// and aegis.shard.
const JournalSchema = "aegis.journal/v1"

// Journal record types, in lifecycle order.
const (
	recSubmitted = "submitted"
	recRunning   = "running"
	recTerminal  = "terminal"
)

// journalRecord is the payload of one framed journal line.  A submitted
// record carries the full normalized request (enough to re-run the job
// from scratch); a terminal record carries the outcome and, for done
// jobs, the marshaled aegis.job/v1 result so a restarted daemon serves
// the original bytes rather than recomputing them.
type journalRecord struct {
	// Schema is stamped on submitted records only; replay accepts files
	// whose first submitted record names a schema it speaks.
	Schema string    `json:"schema,omitempty"`
	Type   string    `json:"type"`
	Time   time.Time `json:"time"`
	ID     string    `json:"id"`

	// Submission identity (submitted records).
	Seq       int64       `json:"seq,omitempty"`
	Tenant    string      `json:"tenant,omitempty"`
	Spec      string      `json:"spec,omitempty"`
	RequestID string      `json:"request_id,omitempty"`
	Request   *JobRequest `json:"request,omitempty"`

	// Outcome (terminal records).
	State  string          `json:"state,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// frameRecord renders one journal line: CRC frame, payload, newline.
func frameRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("journal: marshal %s record: %w", rec.Type, err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// parseFrame verifies one journal line (without its newline) and
// returns its payload record.
func parseFrame(line []byte) (journalRecord, error) {
	var rec journalRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, fmt.Errorf("journal: short or unframed line (%d bytes)", len(line))
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return rec, fmt.Errorf("journal: bad CRC field: %w", err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return rec, fmt.Errorf("journal: CRC mismatch: frame says %08x, payload is %08x", want, got)
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("journal: unmarshal payload: %w", err)
	}
	if rec.ID == "" || rec.Type == "" {
		return rec, fmt.Errorf("journal: record missing id or type")
	}
	return rec, nil
}

// journal is the append side: an open journal file plus its write
// buffer.  Appends are serialized by mu; the Server additionally holds
// its own lock while appending submitted records so journal order
// matches submission order.
type journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	w    *bufio.Writer
	// size is the journal's current byte length; maxBytes > 0 bounds it
	// via compaction (compactLocked) before an append that would exceed
	// the bound.
	size     int64
	maxBytes int64
	// onCompact, when set, observes each compaction (bytes before and
	// after, terminal jobs evicted) — the Server hangs metrics and a log
	// record off it.
	onCompact func(before, after int64, evicted int)
}

// openJournal opens (creating if absent) the journal at path for
// appending, truncating a torn tail left by a crash so new records
// always start on a clean frame boundary.  maxBytes > 0 enables the
// size bound (see compactLocked); 0 means unbounded.
func openJournal(path string, validLen, maxBytes int64) (*journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &journal{path: path, f: f, w: bufio.NewWriter(f), size: validLen, maxBytes: maxBytes}, nil
}

// append writes one framed record.  Every record is flushed to the OS
// before append returns; sync additionally fsyncs — pass true for
// terminal records so a completed result survives machine failure.
// With a size bound configured, an append that would push the journal
// past it triggers a compaction first; the record is then written
// regardless — the bound sheds history, never promises.
func (j *journal) append(rec journalRecord, sync bool) error {
	line, err := frameRecord(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	if j.maxBytes > 0 && j.size > 0 && j.size+int64(len(line)) > j.maxBytes {
		if err := j.compactLocked(); err != nil {
			// A failed compaction must not lose the record: log path is
			// the caller's; keep appending to the uncompacted file.
			_ = err
		}
	}
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: flush: %w", err)
	}
	j.size += int64(len(line))
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	return nil
}

// Size reports the journal's current byte length.
func (j *journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// compactLocked rewrites the journal to the minimal record set that
// replays to the same state: per job, its original submitted record,
// a running record if it was dispatched, and its terminal record (with
// the result bytes for done jobs) — dropping every superseded or
// corrupted line accumulated along the way.  If the live state alone
// still exceeds the bound, the oldest terminal jobs are evicted (their
// shard-cache entries survive, so resubmitting the spec is cheap);
// in-flight jobs are never evicted — an accepted job stays a promise.
//
// The rewrite goes through a temp file, fsync and rename, so a crash at
// any point leaves either the old journal or the complete new one —
// never a torn hybrid.  Callers hold j.mu.
func (j *journal) compactLocked() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: compact flush: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: compact seek: %w", err)
	}
	rep, err := replayJournal(j.f)
	if err != nil {
		// Reposition for appends whatever happened.
		j.f.Seek(0, io.SeekEnd) //nolint:errcheck
		return fmt.Errorf("journal: compact replay: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("journal: compact seek: %w", err)
	}

	// Render each job's minimal record set.
	type jobLines struct {
		lines    []byte
		terminal bool
	}
	rendered := make([]jobLines, 0, len(rep.Jobs))
	var total int64
	for _, rj := range rep.Jobs {
		var buf bytes.Buffer
		sub, err := frameRecord(rj.Submitted)
		if err != nil {
			return err
		}
		buf.Write(sub)
		switch {
		case rj.Terminal():
			term, err := frameRecord(journalRecord{
				Type:   recTerminal,
				Time:   rj.FinishedAt,
				ID:     rj.Submitted.ID,
				State:  rj.State,
				Error:  rj.Error,
				Result: rj.Result,
			})
			if err != nil {
				return err
			}
			buf.Write(term)
		case rj.State == StateRunning:
			run, err := frameRecord(journalRecord{Type: recRunning, Time: rj.Submitted.Time, ID: rj.Submitted.ID})
			if err != nil {
				return err
			}
			buf.Write(run)
		}
		rendered = append(rendered, jobLines{lines: buf.Bytes(), terminal: rj.Terminal()})
		total += int64(buf.Len())
	}

	// Evict oldest terminal jobs while the live state alone overflows
	// the bound.  In-flight jobs always survive.
	evicted := 0
	for i := 0; total > j.maxBytes && i < len(rendered); i++ {
		if !rendered[i].terminal {
			continue
		}
		total -= int64(len(rendered[i].lines))
		rendered[i].lines = nil
		evicted++
	}

	tmp, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".compact*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	cleanup := func() { tmp.Close(); os.Remove(tmp.Name()) }
	for _, jl := range rendered {
		if _, err := tmp.Write(jl.lines); err != nil {
			cleanup()
			return fmt.Errorf("journal: compact write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("journal: compact fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	// Swap the open handle onto the new file.
	nf, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact reopen: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("journal: compact reopen seek: %w", err)
	}
	j.f.Close() //nolint:errcheck // old inode is unlinked; nothing left to lose
	before := j.size
	j.f = nf
	j.w = bufio.NewWriter(nf)
	j.size = total
	if j.onCompact != nil {
		j.onCompact(before, total, evicted)
	}
	return nil
}

// close flushes and closes the journal file.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	j.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// replayedJob is one job reconstructed from the journal: its submitted
// record plus the latest lifecycle state the journal reached.  A job
// whose last record is submitted or running was in flight when the
// daemon died; the Server re-enqueues it (the shard cache makes the
// rerun cheap and byte-identical).
type replayedJob struct {
	Submitted journalRecord
	// State is the job's last journaled state: StateQueued, StateRunning
	// or a terminal state.
	State string
	// Error and Result come from the terminal record, if any, and
	// FinishedAt is that record's timestamp.
	Error      string
	Result     json.RawMessage
	FinishedAt time.Time
}

// Terminal reports whether the journal saw the job finish.
func (r *replayedJob) Terminal() bool { return isTerminal(r.State) }

// journalReplay is the outcome of scanning a journal file.
type journalReplay struct {
	// Jobs holds every replayed job in submission order.
	Jobs []*replayedJob
	// MaxSeq is the highest submission sequence number seen; the Server
	// resumes numbering above it so restart never reuses a job ID.
	MaxSeq int64
	// ValidLen is the byte offset after the last fully-framed line;
	// openJournal truncates the file here before appending.
	ValidLen int64
	// Skipped counts corrupted interior lines (CRC mismatch, bad
	// payload) that were dropped without aborting the replay.
	Skipped int
}

// replayJournal scans framed records from r.  It never fails on
// malformed content — corruption costs at most the damaged records: a
// torn final line is excluded from ValidLen, and a corrupted interior
// line is skipped while every intact fully-framed record around it is
// still recovered.  Records are folded per job ID in file order, so the
// last record wins (a duplicate running record after a restart is
// harmless).
func replayJournal(r io.Reader) (*journalReplay, error) {
	rep := &journalReplay{}
	jobs := map[string]*replayedJob{}
	br := bufio.NewReader(r)
	var offset int64
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			// A final line without its newline is a torn tail from a
			// crash mid-append: everything before it is intact.
			if err == io.EOF {
				return rep, nil
			}
			return rep, fmt.Errorf("journal: read: %w", err)
		}
		offset += int64(len(line))
		rec, perr := parseFrame(bytes.TrimSuffix(line, []byte("\n")))
		// The line is fully framed by its newline either way; corrupted
		// content is skipped, not treated as end-of-journal, so one
		// flipped bit cannot erase the records behind it.
		rep.ValidLen = offset
		if perr != nil {
			rep.Skipped++
			continue
		}
		switch rec.Type {
		case recSubmitted:
			if rec.Request == nil || rec.Seq <= 0 {
				rep.Skipped++
				continue
			}
			if rec.Seq > rep.MaxSeq {
				rep.MaxSeq = rec.Seq
			}
			if _, dup := jobs[rec.ID]; dup {
				rep.Skipped++
				continue
			}
			rj := &replayedJob{Submitted: rec, State: StateQueued}
			jobs[rec.ID] = rj
			rep.Jobs = append(rep.Jobs, rj)
		case recRunning:
			if rj, ok := jobs[rec.ID]; ok && !rj.Terminal() {
				rj.State = StateRunning
			} else {
				rep.Skipped++
			}
		case recTerminal:
			rj, ok := jobs[rec.ID]
			if !ok || !isTerminal(rec.State) {
				rep.Skipped++
				continue
			}
			rj.State = rec.State
			rj.Error = rec.Error
			rj.Result = rec.Result
			rj.FinishedAt = rec.Time
		default:
			rep.Skipped++
		}
	}
}

// replayJournalFile replays the journal at path.  A missing file is an
// empty journal, not an error — first boot and restart share one code
// path.
func replayJournalFile(path string) (*journalReplay, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &journalReplay{}, nil
		}
		return nil, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return replayJournal(f)
}
