package serve_test

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aegis/internal/serve"
)

// Service-level journal bound test: -journal-max-bytes wired through
// Options keeps the journal compacting under load, surfaces the
// compaction metric, and a restart on the compacted journal still
// serves the latest finished job byte-identically.
func TestJournalMaxBytesEndToEnd(t *testing.T) {
	dir := t.TempDir()
	opts := serve.Options{
		Workers:         1,
		Shards:          2,
		JournalPath:     filepath.Join(dir, "journal"),
		JournalMaxBytes: 4096,
	}
	s1, base1 := testServer(t, opts)

	var lastID string
	for i := 0; i < 12; i++ {
		body := fmt.Sprintf(`{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":6,"seed":%d}`, 100+i)
		code, submitted := postJob(t, base1, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %v", i, code, submitted)
		}
		lastID = submitted["id"].(string)
		waitDone(t, base1, lastID)
	}
	lastResult := getBytes(t, base1+"/v1/jobs/"+lastID+"/result")

	metrics := string(getBytes(t, base1+"/metrics"))
	if !strings.Contains(metrics, "aegis_journal_compactions_total") {
		t.Fatalf("aegis_journal_compactions_total not exposed after 12 jobs against a 4 KiB bound:\n%s", metrics)
	}

	// The journal file itself honours the bound (one record of slack).
	fi, err := os.Stat(opts.JournalPath)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > opts.JournalMaxBytes+2048 {
		t.Errorf("journal file is %d bytes, bound is %d", fi.Size(), opts.JournalMaxBytes)
	}

	// Crash (abandon s1) and restart on the compacted journal: the
	// newest finished job must survive with its exact result bytes.
	_ = s1
	_, base2 := testServer(t, opts)
	var st serve.JobStatus
	if code := getJSON(t, base2+"/v1/jobs/"+lastID, &st); code != http.StatusOK {
		t.Fatalf("latest job after restart: status %d", code)
	}
	if st.State != serve.StateDone {
		t.Fatalf("latest job replayed as %q", st.State)
	}
	after := getBytes(t, base2+"/v1/jobs/"+lastID+"/result")
	if !bytes.Equal(lastResult, after) {
		t.Fatalf("result changed across compaction + restart:\n before: %s\n after:  %s", lastResult, after)
	}
}
