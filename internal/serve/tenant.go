package serve

import (
	"net/http"
)

// Multi-tenancy (DESIGN.md §15): every request carries a tenant — the
// X-Aegis-Tenant header, defaulting to "default" — and the daemon
// isolates tenants two ways.  Quotas bound how much of the daemon one
// tenant can occupy (queue slots and total in-flight jobs; breaches get
// 429 with Retry-After).  Dispatch is weighted round-robin over
// per-tenant FIFO queues, so a tenant flooding its queue delays another
// tenant's next job by at most one WRR turn per competing tenant, never
// by its own backlog.

// TenantHeader names the HTTP header that selects a tenant.
const TenantHeader = "X-Aegis-Tenant"

// DefaultTenant is the tenant of requests that send no header.
const DefaultTenant = "default"

// maxTenantName bounds tenant-name length; tenant names label metrics,
// so they must stay short and printable.
const maxTenantName = 64

// tenant is one tenant's scheduling state.  All fields are guarded by
// the Server mutex.
type tenant struct {
	name string
	// fifo holds this tenant's queued jobs in submission order.
	fifo []*Job
	// running counts this tenant's jobs currently executing.
	running int
	// weight is the tenant's WRR share: how many jobs it may dispatch
	// per turn before the cursor moves on (≥ 1).
	weight int
	// turn counts dispatches in the current WRR turn.
	turn int
}

// validTenantName reports whether a tenant header value is usable as a
// tenant: short, and limited to letters, digits, '.', '_' and '-' so it
// is safe as a metric label and a log field.
func validTenantName(name string) bool {
	if name == "" || len(name) > maxTenantName {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// tenantFromRequest resolves the request's tenant.  An absent header is
// the default tenant; a malformed one is a client error.
func tenantFromRequest(r *http.Request) (string, *RequestError) {
	name := r.Header.Get(TenantHeader)
	if name == "" {
		return DefaultTenant, nil
	}
	if !validTenantName(name) {
		return "", &RequestError{
			Field:   TenantHeader,
			Message: "tenant must be 1-64 characters of [A-Za-z0-9._-]",
		}
	}
	return name, nil
}

// tenantLocked returns the tenant's scheduling state, creating it on
// first use.  Callers hold s.mu.
func (s *Server) tenantLocked(name string) *tenant {
	if tn, ok := s.tenants[name]; ok {
		return tn
	}
	w := s.opts.TenantWeights[name]
	if w < 1 {
		w = 1
	}
	tn := &tenant{name: name, weight: w}
	s.tenants[name] = tn
	s.tenantOrder = append(s.tenantOrder, name)
	return tn
}

// nextJobLocked pops the next job to dispatch under weighted round
// robin: the cursor tenant dispatches up to weight jobs per turn, then
// the cursor advances to the next tenant with queued work.  Callers
// hold s.mu; returns nil only when every FIFO is empty.
func (s *Server) nextJobLocked() *Job {
	n := len(s.tenantOrder)
	if n == 0 {
		return nil
	}
	// At most one full lap: each iteration either dispatches or retires
	// the cursor tenant's turn and advances.
	for i := 0; i <= n; i++ {
		tn := s.tenants[s.tenantOrder[s.rrPos%n]]
		if len(tn.fifo) > 0 && tn.turn < tn.weight {
			job := tn.fifo[0]
			tn.fifo = tn.fifo[1:]
			tn.turn++
			return job
		}
		tn.turn = 0
		s.rrPos = (s.rrPos + 1) % n
	}
	return nil
}

// activeKey scopes the duplicate-submission guard per tenant: two
// tenants may run the identical spec as separate jobs (the shard cache
// still ensures the simulation itself is computed once).
func activeKey(tenant, spec string) string { return tenant + "\x00" + spec }
