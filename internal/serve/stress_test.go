package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"aegis/internal/serve"
)

// stressBody builds a small distinct job spec per seed.
func stressBody(seed int) string {
	return fmt.Sprintf(`{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":8,"seed":%d}`, seed)
}

// TestStressNoDuplicateShardWork hammers a running 2-worker daemon with
// concurrent submissions — many of them identical — and proves via the
// cache counters that every shard was computed exactly once: for each
// distinct spec, cache misses summed across all of its jobs equal the
// shard count, no matter how many times the spec was submitted.
func TestStressNoDuplicateShardWork(t *testing.T) {
	const (
		specs      = 4
		goroutines = 6
		rounds     = 3
		shards     = 4
	)
	s := newServer(t, serve.Options{
		Workers:    2,
		QueueDepth: 64,
		Shards:     shards,
		CacheDir:   t.TempDir(),
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	var (
		mu  sync.Mutex
		ids = map[string]bool{}
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for sp := 0; sp < specs; sp++ {
					code, m := postJob(t, ts.URL, stressBody(sp+1))
					switch code {
					case http.StatusAccepted, http.StatusConflict:
						// 409 carries the live duplicate's id; track
						// every job either way.
						if id, _ := m["id"].(string); id != "" {
							mu.Lock()
							ids[id] = true
							mu.Unlock()
						}
					default:
						t.Errorf("goroutine %d: unexpected status %d: %v", g, code, m)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Drive every accepted job to a terminal state and bucket results
	// by seed.
	missesBySeed := map[int64]int64{}
	resultsBySeed := map[int64][]serve.JobResult{}
	for id := range ids {
		st := waitDone(t, ts.URL, id)
		if st.State != serve.StateDone {
			t.Fatalf("job %s: state %q (%s)", id, st.State, st.Error)
		}
		var res serve.JobResult
		if code := getJSON(t, ts.URL+st.ResultURL, &res); code != http.StatusOK {
			t.Fatalf("result %s: %d", id, code)
		}
		if hm := res.Sharding.CacheHits + res.Sharding.CacheMisses; hm != shards {
			t.Fatalf("job %s: hits+misses = %d, want %d", id, hm, shards)
		}
		missesBySeed[res.Request.Seed] += res.Sharding.CacheMisses
		resultsBySeed[res.Request.Seed] = append(resultsBySeed[res.Request.Seed], res)
	}
	if len(resultsBySeed) != specs {
		t.Fatalf("results for %d seeds, want %d", len(resultsBySeed), specs)
	}
	for seed, misses := range missesBySeed {
		// The no-duplicate-work invariant: each of the spec's shards
		// was computed exactly once across every submission of it.
		if misses != shards {
			t.Errorf("seed %d: %d total cache misses across %d jobs, want %d",
				seed, misses, len(resultsBySeed[seed]), shards)
		}
		for _, res := range resultsBySeed[seed][1:] {
			if !reflect.DeepEqual(res.Blocks, resultsBySeed[seed][0].Blocks) {
				t.Errorf("seed %d: results diverge between jobs", seed)
			}
		}
	}
}

// TestStressBurst429 fires a burst of concurrent distinct submissions
// at an unstarted (never-draining) queue of depth 2: exactly two are
// admitted, the rest get 429, and the admitted ones report exact queue
// positions.  Unstarted means no worker races the count.
func TestStressBurst429(t *testing.T) {
	const depth, burst = 2, 8
	s := newServer(t, serve.Options{Workers: 1, QueueDepth: depth})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _ := postJob(t, ts.URL, stressBody(100+i))
			codes[i] = code
		}(i)
	}
	wg.Wait()

	accepted, rejected := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if accepted != depth || rejected != burst-depth {
		t.Fatalf("accepted %d rejected %d, want %d and %d", accepted, rejected, depth, burst-depth)
	}
	var h map[string]any
	getJSON(t, ts.URL+"/v1/healthz", &h)
	if q, _ := h["queued"].(float64); int(q) != depth {
		t.Fatalf("healthz reports %v queued, want %d", h["queued"], depth)
	}
}

// TestStressDrainUnderLoad drains a busy daemon mid-flight, then proves
// the restart story: whatever the first daemon finished is reused, and
// a second daemon on the same cache completes every spec with results
// identical to an undisturbed run.
func TestStressDrainUnderLoad(t *testing.T) {
	const specs, shards = 3, 4
	cacheDir := t.TempDir()
	opts := serve.Options{Workers: 2, QueueDepth: 16, Shards: shards, CacheDir: cacheDir}

	// Reference: an undisturbed daemon run of each spec.
	want := map[int64][]byte{}
	{
		s := newServer(t, opts)
		s.Start()
		ts := httptest.NewServer(s.Handler())
		for sp := 0; sp < specs; sp++ {
			code, m := postJob(t, ts.URL, stressBody(200+sp))
			if code != http.StatusAccepted {
				t.Fatalf("reference submit: %d", code)
			}
			st := waitDone(t, ts.URL, m["id"].(string))
			var res serve.JobResult
			getJSON(t, ts.URL+st.ResultURL, &res)
			want[res.Request.Seed] = mustJSON(t, res.Blocks)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		s.Drain(ctx)
		cancel()
		ts.Close()
	}
	// The reference polluted the cache; start the real test cold.
	cacheDir = t.TempDir()
	opts.CacheDir = cacheDir

	// First daemon: submit everything, then drain immediately.  Jobs
	// end done (finished before the drain) or aborted (stopped at a
	// shard boundary); either way no partial shard is cached.
	s1 := newServer(t, opts)
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	for sp := 0; sp < specs; sp++ {
		if code, _ := postJob(t, ts1.URL, stressBody(200+sp)); code != http.StatusAccepted {
			t.Fatalf("submit %d failed", sp)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	cancel()
	var list struct{ Jobs []serve.JobStatus }
	getJSON(t, ts1.URL+"/v1/jobs", &list)
	for _, st := range list.Jobs {
		switch st.State {
		case serve.StateDone, serve.StateAborted:
		default:
			t.Fatalf("after drain job %s is %q", st.ID, st.State)
		}
	}
	ts1.Close()

	// Second daemon, same cache: everything completes, reusing
	// whatever shards daemon one persisted before the drain.
	s2 := newServer(t, opts)
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s2.Drain(ctx)
	})
	for sp := 0; sp < specs; sp++ {
		code, m := postJob(t, ts2.URL, stressBody(200+sp))
		if code != http.StatusAccepted {
			t.Fatalf("resubmit %d: %d", sp, code)
		}
		st := waitDone(t, ts2.URL, m["id"].(string))
		if st.State != serve.StateDone {
			t.Fatalf("resumed job %s: %q (%s)", st.ID, st.State, st.Error)
		}
		var res serve.JobResult
		getJSON(t, ts2.URL+st.ResultURL, &res)
		if got := mustJSON(t, res.Blocks); string(got) != string(want[res.Request.Seed]) {
			t.Errorf("seed %d: post-drain result diverges from undisturbed run", res.Request.Seed)
		}
		if hm := res.Sharding.CacheHits + res.Sharding.CacheMisses; hm != shards {
			t.Errorf("seed %d: hits+misses %d, want %d", res.Request.Seed, hm, shards)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
