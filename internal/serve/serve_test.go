package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"aegis/internal/core"
	"aegis/internal/engine"
	"aegis/internal/experiments"
	"aegis/internal/serve"
	"aegis/internal/sim"
)

// newServer builds a Server, failing the test on a construction error
// (only possible with a journal path).
func newServer(t *testing.T, opts serve.Options) *serve.Server {
	t.Helper()
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// testServer boots a started Server behind httptest and tears both down
// with the test.
func testServer(t *testing.T, opts serve.Options) (*serve.Server, string) {
	t.Helper()
	s := newServer(t, opts)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			s.Close()
		}
	})
	return s, ts.URL
}

// postJob submits raw JSON and decodes the response body generically.
func postJob(t *testing.T, base, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode %d response: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, m
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s (%d): %v", url, resp.StatusCode, err)
	}
	return resp.StatusCode
}

// waitDone polls a job to a terminal state and returns it.
func waitDone(t *testing.T, base, id string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st serve.JobStatus
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: %d", id, code)
		}
		switch st.State {
		case serve.StateDone, serve.StateFailed, serve.StateAborted:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

const smallJob = `{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":6,"seed":5}`

// TestJobLifecycle drives one job through submit → status → result and
// checks the result carries the full observability payload.
func TestJobLifecycle(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1, Shards: 3, CacheDir: t.TempDir()})

	code, submitted := postJob(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, submitted)
	}
	id, _ := submitted["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", submitted)
	}

	st := waitDone(t, base, id)
	if st.State != serve.StateDone {
		t.Fatalf("state %q, error %q", st.State, st.Error)
	}
	if st.QueuePosition != -1 {
		t.Fatalf("finished job still reports queue position %d", st.QueuePosition)
	}
	if st.Progress.TrialsDone != 6 {
		t.Fatalf("progress reports %d/6 trials", st.Progress.TrialsDone)
	}
	if st.ResultURL == "" {
		t.Fatal("done job has no result_url")
	}

	var res serve.JobResult
	if code := getJSON(t, base+st.ResultURL, &res); code != http.StatusOK {
		t.Fatalf("result: %d", code)
	}
	if res.Schema != serve.JobSchema {
		t.Fatalf("schema %q", res.Schema)
	}
	if len(res.Blocks) != 6 {
		t.Fatalf("%d block results", len(res.Blocks))
	}
	if res.Scheme == "" || res.Counters[res.Scheme].Writes == 0 {
		t.Fatalf("counters missing for scheme %q: %v", res.Scheme, res.Counters)
	}
	if res.Histograms[res.Scheme].Lifetime.Count == 0 {
		t.Fatal("lifetime histogram empty")
	}
	sh := res.Sharding
	if sh.ShardSchema != engine.ShardSchema || sh.Shards != 3 {
		t.Fatalf("sharding info %+v", sh)
	}
	if sh.CacheHits != 0 || sh.CacheMisses != 3 || sh.Persisted != 3 {
		t.Fatalf("cold run cache traffic %+v", sh)
	}
}

// TestServedMatchesDirect: the daemon must return bit-identical results
// to calling the engine directly with the same parameters — serving is
// pure transport.
func TestServedMatchesDirect(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1, Shards: 3})
	code, submitted := postJob(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	st := waitDone(t, base, submitted["id"].(string))
	var res serve.JobResult
	getJSON(t, base+st.ResultURL, &res)

	p := experiments.Quick()
	eng := &engine.Engine{Shards: 3}
	want, err := eng.Blocks(core.MustFactory(64, 11), sim.Config{
		BlockBits: 64, PageBytes: 4096,
		MeanLife: p.MeanLife, CoV: p.CoV,
		Trials: 6, Seed: 5, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Blocks, want) {
		t.Fatalf("served results diverge from direct engine run\nserved: %+v\ndirect: %+v", res.Blocks, want)
	}
}

// TestServedLanesMatchesScalar submits the same job bit-sliced and
// scalar; results must be byte-identical and the manifest must record
// the requested lane width.
func TestServedLanesMatchesScalar(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1, Shards: 2})
	slicedJob := `{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":70,"seed":5,"lanes":64}`
	scalarJob := `{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":70,"seed":5,"lanes":1}`
	run := func(body string) serve.JobResult {
		code, submitted := postJob(t, base, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
		st := waitDone(t, base, submitted["id"].(string))
		var res serve.JobResult
		getJSON(t, base+st.ResultURL, &res)
		return res
	}
	sliced, scalar := run(slicedJob), run(scalarJob)
	if !reflect.DeepEqual(sliced.Blocks, scalar.Blocks) {
		t.Fatalf("sliced served results diverge from scalar\nsliced: %+v\nscalar: %+v", sliced.Blocks, scalar.Blocks)
	}
	if !reflect.DeepEqual(sliced.Counters, scalar.Counters) {
		t.Fatalf("sliced served counters diverge from scalar\nsliced: %+v\nscalar: %+v", sliced.Counters, scalar.Counters)
	}
	if sliced.Sharding.Lanes != 64 || scalar.Sharding.Lanes != 1 {
		t.Fatalf("sharding block lanes = %d / %d, want 64 / 1", sliced.Sharding.Lanes, scalar.Sharding.Lanes)
	}
}

// TestInvalidPayloads: every malformed request must produce a 400 with
// a structured error naming the offending field.
func TestInvalidPayloads(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1})
	cases := []struct {
		name  string
		body  string
		field string // expected "field" in the error body ("" = any)
	}{
		{"empty object", `{}`, "kind"},
		{"unknown kind", `{"kind":"device","scheme":"aegis:61"}`, "kind"},
		{"missing scheme", `{"kind":"blocks"}`, "scheme"},
		{"unknown scheme family", `{"kind":"blocks","scheme":"hamming:7"}`, "scheme"},
		{"scheme arity", `{"kind":"blocks","scheme":"aegis:61:9"}`, "scheme"},
		{"scheme non-integer", `{"kind":"blocks","scheme":"aegis:many"}`, "scheme"},
		{"bad preset", `{"kind":"blocks","scheme":"aegis:61","preset":"huge"}`, "preset"},
		{"negative trials", `{"kind":"blocks","scheme":"aegis:61","trials":-3}`, "trials"},
		{"negative block bits", `{"kind":"blocks","scheme":"aegis:61","block_bits":-512}`, "block_bits"},
		{"page smaller than block", `{"kind":"pages","scheme":"aegis:61","page_bytes":16}`, "page_bytes"},
		{"curve params on blocks", `{"kind":"blocks","scheme":"aegis:61","max_faults":10}`, "max_faults"},
		{"bias out of range", `{"kind":"curve","scheme":"aegis:61","bias":1.5}`, "bias"},
		{"negative shards", `{"kind":"blocks","scheme":"aegis:61","shards":-1}`, "shards"},
		{"negative lanes", `{"kind":"blocks","scheme":"aegis:61","lanes":-1}`, "lanes"},
		{"lanes beyond word", `{"kind":"blocks","scheme":"aegis:61","lanes":65}`, "lanes"},
		{"negative timeout", `{"kind":"blocks","scheme":"aegis:61","timeout_seconds":-2}`, "timeout_seconds"},
		{"unknown field", `{"kind":"blocks","scheme":"aegis:61","cheese":1}`, ""},
		{"malformed json", `{"kind":`, ""},
		{"non-object", `42`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJob(t, base, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, body %v", code, body)
			}
			msg, _ := body["error"].(string)
			if msg == "" {
				t.Fatalf("no error message in %v", body)
			}
			if field, _ := body["field"].(string); tc.field != "" && field != tc.field {
				t.Fatalf("error field %q, want %q (message: %s)", field, tc.field, msg)
			}
		})
	}
}

// TestUnknownJob404 covers both lookup endpoints.
func TestUnknownJob404(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		var m map[string]any
		if code := getJSON(t, base+path, &m); code != http.StatusNotFound {
			t.Fatalf("%s: %d", path, code)
		}
	}
}

// Unstarted-server tests: with no workers consuming the queue, queue
// states are exact rather than racing against job completion.

// TestResultBeforeCompletion: asking for a queued job's result is a 409,
// not a 404 (the job exists) and not an empty 200.
func TestResultBeforeCompletion(t *testing.T) {
	s := newServer(t, serve.Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, submitted := postJob(t, ts.URL, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := submitted["id"].(string)
	var m map[string]any
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &m); code != http.StatusConflict {
		t.Fatalf("result of queued job: %d, want 409", code)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "queued") {
		t.Fatalf("error %q does not name the state", m["error"])
	}
}

// TestDuplicateActive409: submitting a spec identical to a live job is
// refused with a pointer to that job, so clients poll instead of
// double-computing.
func TestDuplicateActive409(t *testing.T) {
	s := newServer(t, serve.Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, first := postJob(t, ts.URL, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	code, second := postJob(t, ts.URL, smallJob)
	if code != http.StatusConflict {
		t.Fatalf("duplicate submit: %d, want 409", code)
	}
	if second["id"] != first["id"] {
		t.Fatalf("409 points at %v, want %v", second["id"], first["id"])
	}
	// Field order and formatting must not defeat the dedup: same spec,
	// different JSON spelling.
	reordered := `{"seed":5,"trials":6,"block_bits":64,"scheme":"aegis:11","kind":"blocks"}`
	if code, _ := postJob(t, ts.URL, reordered); code != http.StatusConflict {
		t.Fatalf("reordered duplicate: %d, want 409", code)
	}
	// A genuinely different spec is accepted.
	if code, _ := postJob(t, ts.URL, `{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":6,"seed":6}`); code != http.StatusAccepted {
		t.Fatalf("distinct spec: %d, want 202", code)
	}
}

// TestQueuePositionsAndBackpressure: positions are exact on an
// unstarted server, and the bounded queue answers 429 past its depth.
func TestQueuePositionsAndBackpressure(t *testing.T) {
	s := newServer(t, serve.Options{Workers: 1, QueueDepth: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ids := make([]string, 3)
	for i := range ids {
		body := fmt.Sprintf(`{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":6,"seed":%d}`, i+1)
		code, m := postJob(t, ts.URL, body)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids[i] = m["id"].(string)
	}
	for i, id := range ids {
		var st serve.JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
		if st.State != serve.StateQueued || st.QueuePosition != i {
			t.Fatalf("job %d: state %q position %d", i, st.State, st.QueuePosition)
		}
	}
	code, m := postJob(t, ts.URL, `{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":6,"seed":99}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: %d %v, want 429", code, m)
	}
}

// TestRerunServedFromCache is the service-level resume guarantee: a
// second daemon pointed at the same cache directory serves an identical
// spec entirely from cached shards — zero recomputation — with results
// byte-identical to the first run.
func TestRerunServedFromCache(t *testing.T) {
	cacheDir := t.TempDir()
	opts := serve.Options{Workers: 1, Shards: 4, CacheDir: cacheDir}

	runOnce := func() serve.JobResult {
		s := newServer(t, opts)
		s.Start()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		code, submitted := postJob(t, ts.URL, smallJob)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
		st := waitDone(t, ts.URL, submitted["id"].(string))
		if st.State != serve.StateDone {
			t.Fatalf("state %q: %s", st.State, st.Error)
		}
		var res serve.JobResult
		getJSON(t, ts.URL+st.ResultURL, &res)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
		return res
	}

	first := runOnce()
	if first.Sharding.CacheMisses != 4 || first.Sharding.Persisted != 4 {
		t.Fatalf("first run traffic %+v", first.Sharding)
	}
	second := runOnce() // a fresh daemon: only the cache directory is shared
	if second.Sharding.CacheHits != 4 || second.Sharding.CacheMisses != 0 {
		t.Fatalf("second run not fully cached: %+v", second.Sharding)
	}
	if !reflect.DeepEqual(first.Blocks, second.Blocks) {
		t.Fatal("cached rerun changed results")
	}
	if !reflect.DeepEqual(first.Counters, second.Counters) {
		t.Fatal("cached rerun changed counters")
	}
	if !reflect.DeepEqual(first.Histograms, second.Histograms) {
		t.Fatal("cached rerun changed histograms")
	}
}

// TestCurveAndPagesKinds: the other two job kinds round-trip and match
// their direct-sim references.
func TestCurveAndPagesKinds(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1, Shards: 2})
	p := experiments.Quick()
	f := core.MustFactory(64, 11)

	code, m := postJob(t, base, `{"kind":"curve","scheme":"aegis:11","block_bits":64,"trials":8,"seed":3,"max_faults":6,"writes_per_step":4}`)
	if code != http.StatusAccepted {
		t.Fatalf("curve submit: %d %v", code, m)
	}
	st := waitDone(t, base, m["id"].(string))
	var res serve.JobResult
	getJSON(t, base+st.ResultURL, &res)
	want := sim.FailureCurveBias(f, sim.Config{
		BlockBits: 64, PageBytes: 4096, MeanLife: p.MeanLife, CoV: p.CoV,
		Trials: 8, Seed: 3, Workers: 1,
	}, 6, 4, 0.5)
	if !reflect.DeepEqual(res.Curve, want) {
		t.Fatalf("curve diverges: %v vs %v", res.Curve, want)
	}

	code, m = postJob(t, base, `{"kind":"pages","scheme":"aegis:11","block_bits":64,"page_bytes":64,"trials":4,"seed":3}`)
	if code != http.StatusAccepted {
		t.Fatalf("pages submit: %d %v", code, m)
	}
	st = waitDone(t, base, m["id"].(string))
	if st.State != serve.StateDone {
		t.Fatalf("pages job %q: %s", st.State, st.Error)
	}
	getJSON(t, base+st.ResultURL, &res)
	if len(res.Pages) != 4 {
		t.Fatalf("%d page results", len(res.Pages))
	}
}

// TestJobTimeoutFails: a job whose deadline expires mid-run fails with
// a deadline error and never reports a result.
func TestJobTimeoutFails(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1, Shards: 2})
	// A hefty 512-bit job with a 1 ns deadline: the context expires
	// before the first trial.
	body := `{"kind":"blocks","scheme":"aegis:61","trials":64,"seed":2,"timeout_seconds":1e-9}`
	code, m := postJob(t, base, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	st := waitDone(t, base, m["id"].(string))
	if st.State != serve.StateFailed {
		t.Fatalf("state %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", st.Error)
	}
	var e map[string]any
	if code := getJSON(t, base+"/v1/jobs/"+m["id"].(string)+"/result", &e); code != http.StatusConflict {
		t.Fatalf("result of failed job: %d, want 409", code)
	}
}

// TestHealthzAndProgress smoke-tests the operational endpoints.
func TestHealthzAndProgress(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1})
	var h map[string]any
	if code := getJSON(t, base+"/v1/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz %v", h)
	}
	var p map[string]any
	if code := getJSON(t, base+"/debug/aegis/progress", &p); code != http.StatusOK {
		t.Fatalf("progress: %d", code)
	}
	var list map[string]any
	if code := getJSON(t, base+"/v1/jobs", &list); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
}

// TestDrainRejectsSubmissions: a draining server answers 503 and points
// the client at the cache-backed retry story.
func TestDrainRejectsSubmissions(t *testing.T) {
	s := newServer(t, serve.Options{Workers: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	code, m := postJob(t, ts.URL, smallJob)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d %v, want 503", code, m)
	}
	var h map[string]any
	getJSON(t, ts.URL+"/v1/healthz", &h)
	if h["status"] != "draining" {
		t.Fatalf("healthz after drain: %v", h)
	}
}
