package serve

import (
	"context"
	"log/slog"

	"aegis/internal/engine"
	"aegis/internal/scheme"
	"aegis/internal/sim"
)

// Runner is an alternative execution strategy for a job's simulation:
// given the normalized request and its derived configuration, produce
// the merged aegis.shard/v1 document covering the job's full trial
// range.  The daemon's default strategy is the local shard engine
// (runJob); a coordinator daemon installs internal/cluster's
// Coordinator here to fan the shards out over a worker fleet instead.
//
// The contract that keeps cluster runs byte-identical to standalone
// ones: the returned shard must be exactly what engine.Merge over the
// run's content-addressed shards produces, the per-scheme counter and
// histogram deltas must be folded into Config.Obs under the factory's
// name (as engine.run does), and cache traffic must be counted on
// Config.Obs.Shards() — runJob builds the aegis.job/v1 result from
// those, through the same code path for both strategies.
type Runner interface {
	RunJob(ctx context.Context, job RunnerJob) (*engine.Shard, error)
}

// RunnerJob is everything a Runner needs to execute one job.
type RunnerJob struct {
	// JobID is the job's public ID (j%06d-<spec12>); leases carry it
	// for correlation.
	JobID string
	// Request is the normalized job request — the form that crosses the
	// cluster wire, since a worker can reconstruct the factory and
	// configuration from it (JobRequest.Normalize, SimConfig).
	Request JobRequest
	// Factory is the resolved scheme factory (Request.Normalize's
	// result); Factory.Name() keys the counters.
	Factory scheme.Factory
	// Config is the run's simulation configuration with the job's
	// observability sinks wired: Obs is the job-private registry,
	// Progress the live progress, Ctx the hard-stop context.
	Config sim.Config
	// Kind is the simulation kind (KindBlocks/KindPages/KindCurve).
	Kind string
	// Shards is the number of content-addressed slices to split the
	// trial range into.
	Shards int
	// Curve carries the failure-curve probe parameters (zero unless
	// Kind is KindCurve).
	Curve engine.CurveParams
	// Drain soft-stops the run when closed: finish what is in flight,
	// issue nothing new, return engine.ErrDraining.
	Drain <-chan struct{}
	// Logger carries the job's correlation chain (request ID, job ID,
	// spec hash); shard-level records should add the shard key.
	Logger *slog.Logger
}
