package serve_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"aegis/internal/serve"
)

// jsonDecode decodes one JSON value off a reader.
func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

// testCtx returns a context that dies with the test.
func testCtx(t *testing.T) context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	return ctx
}

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// scrapeUntil polls /metrics until ok accepts the text; some counters
// (job totals, folded scheme counters) land moments after the job's
// terminal state becomes visible.
func scrapeUntil(t *testing.T, base string, ok func(string) bool) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		text := scrape(t, base)
		if ok(text) {
			return text
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never reached expected state:\n%s", text)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// familySum adds up every series of one family in an exposition.
func familySum(t *testing.T, text, family string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(family) + `(\{[^}]*\})? (\S+)$`)
	var sum float64
	for _, m := range re.FindAllStringSubmatch(text, -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", m[0], err)
		}
		sum += v
	}
	return sum
}

// TestMetricsEndpoint runs one job to completion and checks every
// metric source shows up on /metrics: request instrumentation, folded
// per-scheme counters, shard-cache traffic, job states, build identity
// and runtime basics.
func TestMetricsEndpoint(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1, Shards: 3, CacheDir: t.TempDir()})

	code, submitted := postJob(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, submitted)
	}
	id := submitted["id"].(string)
	waitDone(t, base, id)

	text := scrapeUntil(t, base, func(s string) bool {
		return strings.Contains(s, `aegis_jobs_total{state="done"} 1`)
	})
	for _, want := range []string{
		`aegis_http_requests_total{route="/v1/jobs",method="POST",code="202"} 1`,
		"aegis_http_request_duration_seconds_bucket",
		"aegis_http_inflight_requests",
		`aegis_scheme_writes_total{scheme="Aegis 6x11"}`,
		`aegis_scheme_bit_writes_total{scheme="Aegis 6x11"}`,
		`aegis_scheme_lifetime_writes_count{scheme="Aegis 6x11"} 6`,
		"aegis_shard_cache_misses_total 3",
		"aegis_shard_persisted_total 3",
		"aegis_jobs_queued 0",
		"aegis_jobs_running 0",
		"aegis_workers 1",
		"aegis_event_streams 0",
		"aegis_build_info{",
		"go_goroutines ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if familySum(t, text, "aegis_scheme_writes_total") <= 0 {
		t.Fatal("no scheme writes folded into the service registry")
	}
}

// TestMetricsScrapeUnderLoad scrapes concurrently with running jobs and
// checks monotone counters never go backwards between scrapes and
// histogram series stay internally consistent (no torn reads surfacing
// as decreasing cumulative buckets).  Run with -race this also pins the
// locking of the whole scrape path.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 2, Shards: 4, CacheDir: t.TempDir()})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":12,"seed":%d}`, i+1)
			code, m := postJob(t, base, body)
			if code != http.StatusAccepted {
				t.Errorf("submit %d: %d %v", i, code, m)
				return
			}
			waitDone(t, base, m["id"].(string))
		}(i)
	}

	bucketRe := regexp.MustCompile(`(?m)^(\w+_bucket)\{([^}]*)le="([^"]+)"\} (\d+)$`)
	var lastRequests, lastMisses float64
	for i := 0; i < 40; i++ {
		text := scrape(t, base)
		if v := familySum(t, text, "aegis_http_requests_total"); v < lastRequests {
			t.Fatalf("aegis_http_requests_total went backwards: %v after %v", v, lastRequests)
		} else {
			lastRequests = v
		}
		if v := familySum(t, text, "aegis_shard_cache_misses_total"); v < lastMisses {
			t.Fatalf("aegis_shard_cache_misses_total went backwards: %v after %v", v, lastMisses)
		} else {
			lastMisses = v
		}
		// Within one scrape, each histogram's cumulative buckets must be
		// non-decreasing in le order (the order they render in).
		cums := map[string]int64{}
		for _, m := range bucketRe.FindAllStringSubmatch(text, -1) {
			key := m[1] + "{" + m[2] + "}"
			n, _ := strconv.ParseInt(m[4], 10, 64)
			if n < cums[key] {
				t.Fatalf("torn histogram read: %s le=%s dropped to %d", key, m[3], n)
			}
			cums[key] = n
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id, name, data string
}

// readEvent parses the next event off an SSE stream, skipping comment
// heartbeats.
func readEvent(sc *bufio.Scanner) (sseEvent, error) {
	var ev sseEvent
	got := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if got {
				return ev, nil
			}
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "id: "):
			ev.id = line[4:]
			got = true
		case strings.HasPrefix(line, "event: "):
			ev.name = line[7:]
			got = true
		case strings.HasPrefix(line, "data: "):
			ev.data = line[6:]
			got = true
		}
	}
	if err := sc.Err(); err != nil {
		return ev, err
	}
	return ev, io.EOF
}

// openStream subscribes to a job's event stream.
func openStream(t *testing.T, base, id string) *http.Response {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSSEStream subscribes to a queued job, sees multiple progress
// frames, releases the job, and reads the terminal "done" frame.  Also
// checks a second subscriber can disconnect mid-stream without
// leaking its serving goroutine.
func TestSSEStream(t *testing.T) {
	before := runtime.NumGoroutine()

	// Started manually after the stream is open, so the queued phase is
	// arbitrarily long and frame counts are deterministic.
	s := newServer(t, serve.Options{
		Workers: 1, Shards: 2, CacheDir: t.TempDir(),
		StreamInterval: 10 * time.Millisecond,
	})
	base, closeTS := rawServer(t, s)

	code, submitted := postJob(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, submitted)
	}
	id := submitted["id"].(string)

	resp := openStream(t, base, id)
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("stream response missing request id")
	}
	// A mid-stream disconnector rides along.
	dropper := openStream(t, base, id)

	sc := bufio.NewScanner(resp.Body)
	frames := 0
	for frames < 3 {
		ev, err := readEvent(sc)
		if err != nil {
			t.Fatalf("reading frame %d: %v", frames, err)
		}
		if ev.name != "progress" {
			t.Fatalf("frame %d: event %q, want progress", frames, ev.name)
		}
		if !strings.Contains(ev.data, `"state":"queued"`) {
			t.Fatalf("queued-phase frame carries %s", ev.data)
		}
		if !strings.Contains(ev.data, `"`+id+`"`) {
			t.Fatalf("frame does not name its job: %s", ev.data)
		}
		frames++
	}
	dropper.Body.Close() // disconnect mid-stream

	s.Start()
	sawDone := false
	for !sawDone {
		ev, err := readEvent(sc)
		if err != nil {
			t.Fatalf("after start: %v", err)
		}
		switch ev.name {
		case "progress":
			frames++
		case "done":
			if !strings.Contains(ev.data, `"state":"done"`) {
				t.Fatalf("done frame carries %s", ev.data)
			}
			if !strings.Contains(ev.data, `"result_url"`) {
				t.Fatalf("done frame has no result_url: %s", ev.data)
			}
			sawDone = true
		default:
			t.Fatalf("unexpected event %q", ev.name)
		}
	}
	if frames < 2 {
		t.Fatalf("saw %d progress frames, want at least 2", frames)
	}
	// The stream must END after done: the server closes it.
	if _, err := readEvent(sc); err != io.EOF {
		t.Fatalf("stream still open after done frame: %v", err)
	}
	resp.Body.Close()

	// Both stream goroutines (and the dropper's) must wind down.
	closeTS()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// rawServer mounts an un-Started server and returns an explicit closer
// so tests control teardown ordering.
func rawServer(t *testing.T, s *serve.Server) (string, func()) {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	closed := false
	closeTS := func() {
		if !closed {
			closed = true
			ts.Close()
		}
	}
	t.Cleanup(func() {
		closeTS()
		s.Close()
	})
	return ts.URL, closeTS
}

// TestSSETerminalJob: subscribing to an already-finished job yields one
// progress frame and the done frame, then the stream closes.
func TestSSETerminalJob(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1, Shards: 2, CacheDir: t.TempDir()})
	code, submitted := postJob(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := submitted["id"].(string)
	waitDone(t, base, id)

	resp := openStream(t, base, id)
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	ev, err := readEvent(sc)
	if err != nil || ev.name != "progress" {
		t.Fatalf("first event %q (%v), want progress", ev.name, err)
	}
	ev, err = readEvent(sc)
	if err != nil || ev.name != "done" {
		t.Fatalf("second event %q (%v), want done", ev.name, err)
	}
	if _, err := readEvent(sc); err != io.EOF {
		t.Fatalf("stream did not close after done: %v", err)
	}
}

// TestSSEStreamCap: subscribers beyond MaxStreams get 503 with
// Retry-After and a correlated error body.
func TestSSEStreamCap(t *testing.T) {
	s := newServer(t, serve.Options{
		Workers: 1, MaxStreams: 1,
		StreamInterval: 10 * time.Millisecond,
	})
	base, _ := rawServer(t, s) // never started: job stays queued

	code, submitted := postJob(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := submitted["id"].(string)

	first := openStream(t, base, id)
	defer first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first stream: %d", first.StatusCode)
	}
	// Wait for the first frame so the stream is definitely registered.
	if _, err := readEvent(bufio.NewScanner(first.Body)); err != nil {
		t.Fatal(err)
	}

	second := openStream(t, base, id)
	defer second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream: %d, want 503", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var re map[string]any
	if err := jsonDecode(second.Body, &re); err != nil {
		t.Fatal(err)
	}
	if re["request_id"] == "" || re["request_id"] == nil {
		t.Fatalf("error body without request_id: %v", re)
	}
}

// TestBackpressureHeaders: queue-full 429 and draining 503 both carry
// Retry-After and a request_id-stamped body, and every response echoes
// X-Request-Id.
func TestBackpressureHeaders(t *testing.T) {
	s := newServer(t, serve.Options{Workers: 1, QueueDepth: 1})
	base, _ := rawServer(t, s) // never started: the queue stays full

	code, _ := postJob(t, base, smallJob)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":7}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("429 Retry-After = %q, want \"5\"", ra)
	}
	rid := resp.Header.Get("X-Request-Id")
	if rid == "" {
		t.Fatal("429 without X-Request-Id header")
	}
	var body map[string]any
	if err := jsonDecode(resp.Body, &body); err != nil {
		t.Fatal(err)
	}
	if body["request_id"] != rid {
		t.Fatalf("body request_id %v != header %q", body["request_id"], rid)
	}

	// Draining: submissions get 503 + Retry-After.
	go s.Drain(testCtx(t))
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(smallJob))
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		ra := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			if ra != "10" {
				t.Fatalf("503 Retry-After = %q, want \"10\"", ra)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining server still answers %d", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClientRequestIDAdopted: a caller-supplied X-Request-Id flows to
// the response header unchanged.
func TestClientRequestIDAdopted(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1})
	req, _ := http.NewRequest("GET", base+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-me-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-123" {
		t.Fatalf("X-Request-Id = %q, want the client's own", got)
	}
}

// TestVersionEndpoint checks /v1/version reports the build and every
// wire-format schema.
func TestVersionEndpoint(t *testing.T) {
	_, base := testServer(t, serve.Options{Workers: 1})
	var v serve.VersionInfo
	if code := getJSON(t, base+"/v1/version", &v); code != http.StatusOK {
		t.Fatalf("version: %d", code)
	}
	if v.Service != "aegisd" {
		t.Fatalf("service %q", v.Service)
	}
	if v.GitSHA == "" || v.GoVersion == "" {
		t.Fatalf("incomplete build identity: %+v", v)
	}
	want := map[string]string{
		"job":      "aegis.job/v1",
		"shard":    "aegis.shard/v1",
		"manifest": "aegis.run-manifest/v3",
		"events":   "aegis.events/v1",
	}
	for k, schema := range want {
		if v.Schemas[k] != schema {
			t.Fatalf("schema %s = %q, want %q", k, v.Schemas[k], schema)
		}
	}
}

// syncWriter serializes concurrent slog writes from shard workers.
type syncWriter struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestLogCorrelationChain submits a job with a caller-chosen request ID
// and checks the chain holds through the logs: the acceptance record,
// the job lifecycle records and every engine shard record all carry
// that request ID plus the job ID and spec hash.
func TestLogCorrelationChain(t *testing.T) {
	w := &syncWriter{}
	logger := slog.New(slog.NewJSONHandler(w, nil))
	_, base := testServer(t, serve.Options{
		Workers: 1, Shards: 2, CacheDir: t.TempDir(), Logger: logger,
	})

	req, _ := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(smallJob))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "corr-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var submitted map[string]any
	if err := jsonDecode(resp.Body, &submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, submitted)
	}
	id := submitted["id"].(string)
	waitDone(t, base, id)

	// "job done" is the last record the job emits; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(w.String(), `"msg":"job done"`) {
		if time.Now().After(deadline) {
			t.Fatalf("no \"job done\" record:\n%s", w.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	byMsg := map[string][]map[string]any{}
	for _, line := range strings.Split(strings.TrimSpace(w.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable record %q: %v", line, err)
		}
		msg, _ := rec["msg"].(string)
		byMsg[msg] = append(byMsg[msg], rec)
	}
	for _, msg := range []string{"job accepted", "job started", "job done"} {
		recs := byMsg[msg]
		if len(recs) != 1 {
			t.Fatalf("%d %q records, want 1:\n%s", len(recs), msg, w.String())
		}
		rec := recs[0]
		if rec["request_id"] != "corr-test-1" {
			t.Fatalf("%q record lost the request ID: %v", msg, rec)
		}
		if msg != "job accepted" && rec["job"] != id {
			t.Fatalf("%q record names job %v, want %s", msg, rec["job"], id)
		}
	}
	shards := byMsg["shard computed"]
	if len(shards) != 2 {
		t.Fatalf("%d shard records, want 2", len(shards))
	}
	for _, rec := range shards {
		if rec["request_id"] != "corr-test-1" || rec["job"] != id {
			t.Fatalf("shard record outside the correlation chain: %v", rec)
		}
		if rec["spec"] == nil || rec["shard_key"] == nil {
			t.Fatalf("shard record missing spec/shard_key: %v", rec)
		}
	}
}
