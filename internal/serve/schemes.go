package serve

import (
	"fmt"
	"strconv"
	"strings"

	"aegis/internal/aegisrw"
	"aegis/internal/core"
	"aegis/internal/ecp"
	"aegis/internal/failcache"
	"aegis/internal/rdis"
	"aegis/internal/safer"
	"aegis/internal/scheme"
)

// cache is the idealized fail cache the paper grants RDIS and the rw /
// SAFER-cache variants, mirroring internal/experiments.
var cache = failcache.Perfect{}

// SchemeGrammar documents the job request's scheme syntax; error
// responses quote it so clients can self-correct.
const SchemeGrammar = "aegis:B | aegis-p:B:Q | aegis-rw:B | aegis-rw-p:B:P | ecp:ENTRIES | safer:GROUPS | safer-cache:GROUPS | rdis:DEPTH"

// ResolveScheme parses a job request's scheme spec ("family:param…")
// into a factory for blockBits-sized data blocks.  The families mirror
// the rosters of internal/experiments; parameters are the same integers
// the paper's configurations use (e.g. "aegis:61" is Aegis 9x61 at 512
// bits, "safer-cache:64" is SAFER64-cache).
func ResolveScheme(spec string, blockBits int) (scheme.Factory, error) {
	parts := strings.Split(spec, ":")
	family := parts[0]
	args := make([]int, 0, len(parts)-1)
	for _, p := range parts[1:] {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("scheme %q: parameter %q is not an integer (grammar: %s)", spec, p, SchemeGrammar)
		}
		args = append(args, v)
	}
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("scheme %q: family %q takes %d parameter(s), got %d (grammar: %s)",
				spec, family, n, len(args), SchemeGrammar)
		}
		return nil
	}
	var (
		f   scheme.Factory
		err error
	)
	switch family {
	case "aegis":
		if err = want(1); err == nil {
			f, err = core.NewFactory(blockBits, args[0])
		}
	case "aegis-p":
		if err = want(2); err == nil {
			f, err = core.NewPFactory(blockBits, args[0], args[1])
		}
	case "aegis-rw":
		if err = want(1); err == nil {
			f, err = aegisrw.NewRWFactory(blockBits, args[0], cache)
		}
	case "aegis-rw-p":
		if err = want(2); err == nil {
			f, err = aegisrw.NewRWPFactory(blockBits, args[0], args[1], cache)
		}
	case "ecp":
		if err = want(1); err == nil {
			f, err = ecp.NewFactory(blockBits, args[0])
		}
	case "safer":
		if err = want(1); err == nil {
			f, err = safer.NewFactory(blockBits, args[0])
		}
	case "safer-cache":
		if err = want(1); err == nil {
			f, err = safer.NewCachedFactory(blockBits, args[0], cache)
		}
	case "rdis":
		if err = want(1); err == nil {
			f, err = rdis.NewFactory(blockBits, args[0], cache)
		}
	default:
		return nil, fmt.Errorf("unknown scheme family %q (grammar: %s)", family, SchemeGrammar)
	}
	if err != nil {
		if strings.Contains(err.Error(), "grammar") {
			return nil, err // already self-describing
		}
		return nil, fmt.Errorf("scheme %q at %d bits: %w", spec, blockBits, err)
	}
	return f, nil
}
