package serve

import (
	"net/http"

	"aegis/internal/engine"
	"aegis/internal/obs"
)

// LeaseSchema identifies the cluster lease wire format.  The protocol
// lives in internal/cluster (which imports this package for the job
// request type, so the constant is declared here to appear in the
// version report without an import cycle).
const LeaseSchema = "aegis.lease/v1"

// VersionInfo is the GET /v1/version response and the aegisd -version
// report: the build identity plus the schema version of every wire and
// file format the daemon speaks.  Clients use the schema map to decide
// compatibility before submitting work.
type VersionInfo struct {
	Service   string `json:"service"`
	GitSHA    string `json:"git_sha"`
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// Schemas maps format name → identifier for every versioned format:
	// job (the result payload), shard (the cache files), manifest (CLI
	// run manifests) and events (decision traces).
	Schemas map[string]string `json:"schemas"`
}

// Version reports the running build's identity.  The GitSHA lookup is
// cached process-wide (obs.GitSHA), so calling this per request is
// cheap.
func Version() VersionInfo {
	return VersionInfo{
		Service:   "aegisd",
		GitSHA:    obs.GitSHA(),
		GoVersion: obs.GoVersion(),
		OS:        obs.GOOS(),
		Arch:      obs.GOARCH(),
		Schemas: map[string]string{
			"job":      JobSchema,
			"journal":  JournalSchema,
			"shard":    engine.ShardSchema,
			"manifest": obs.ManifestSchema,
			"events":   obs.EventSchema,
			"lease":    LeaseSchema,
		},
	}
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Version())
}
