package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// GET /v1/jobs/{id}/events streams a job's progress as Server-Sent
// Events (DESIGN.md §14): one "progress" event per interval carrying
// the job's state and live progress snapshot, comment-line heartbeats
// to keep idle proxies from dropping the connection, and a final "done"
// event carrying the job's full status once it reaches a terminal
// state.  The stream ends after "done"; a job that is already terminal
// yields one "progress" frame and the "done" frame immediately.
//
// The fan-out is bounded (Options.MaxStreams); excess subscribers get
// 503 with Retry-After rather than an unbounded goroutine pile-up, and
// a client that disconnects mid-stream is detected via its request
// context on the next frame.

// streamFrame is the data payload of a "progress" event.
type streamFrame struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Progress any    `json:"progress"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		s.writeError(w, r, http.StatusNotFound, &RequestError{Message: "unknown job " + r.PathValue("id")})
		return
	}
	if n := s.streams.Add(1); int(n) > s.opts.MaxStreams {
		s.streams.Add(-1)
		s.writeError(w, r, http.StatusServiceUnavailable,
			&RequestError{Message: fmt.Sprintf("too many open event streams (limit %d); retry shortly", s.opts.MaxStreams)})
		return
	}
	defer s.streams.Add(-1)

	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	seq := 0
	send := func(event string, payload any) error {
		data, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		seq++
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", seq, event, data); err != nil {
			return err
		}
		return rc.Flush()
	}
	frame := func() (string, error) {
		state := job.stateLocked()
		return state, send("progress", streamFrame{ID: job.id, State: state, Progress: job.progress.Snapshot()})
	}
	done := func() {
		// The terminal frame carries the full status (error, timestamps,
		// result URL), so a subscriber needs no follow-up poll.
		send("done", s.status(job)) //nolint:errcheck // stream is ending either way
	}

	state, err := frame()
	if err != nil {
		return
	}
	if isTerminal(state) {
		done()
		return
	}

	ticker := time.NewTicker(s.opts.StreamInterval)
	defer ticker.Stop()
	heartbeat := time.NewTicker(s.opts.StreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			// A comment line per the SSE grammar: ignored by clients,
			// keeps the connection visibly alive to intermediaries.
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-ticker.C:
			state, err := frame()
			if err != nil {
				return
			}
			if isTerminal(state) {
				done()
				return
			}
		}
	}
}

// isTerminal reports whether a job state can no longer change.
func isTerminal(state string) bool {
	switch state {
	case StateDone, StateFailed, StateAborted:
		return true
	}
	return false
}
