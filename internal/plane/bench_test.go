// Micro-benchmarks for the partition-plane lookups on the write hot
// path: bit→group arithmetic, group-mask ROM reads, and the word-level
// inversion-vector fold.  Figure-level regressions localize here when a
// lookup slows down or starts allocating:
//
//	go test -bench . -benchmem ./internal/plane/
package plane

import (
	"aegis/internal/xrand"
	"testing"

	"aegis/internal/bitvec"
)

func BenchmarkGroup9x61(b *testing.B) {
	l := MustLayout(512, 61)
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += l.Group(i&511, i%61)
	}
	_ = sink
}

func BenchmarkGroupMask9x61(b *testing.B) {
	l := MustLayout(512, 61)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.GroupMask(i%61, (i+7)%61)
	}
}

func BenchmarkXorGroups9x61(b *testing.B) {
	l := MustLayout(512, 61)
	rng := xrand.New(1)
	dst := bitvec.Random(512, rng)
	groups := bitvec.New(61)
	for g := 0; g < 61; g += 7 {
		groups.Set(g, true)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.XorGroups(dst, groups, i%61)
	}
}

func BenchmarkFindCollisionFree9x61(b *testing.B) {
	l := MustLayout(512, 61)
	rng := xrand.New(2)
	faults := rng.Perm(512)[:6]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := l.FindCollisionFree(faults, i%61); !ok {
			b.Fatal("no collision-free slope for 6 faults in 9x61")
		}
	}
}

func BenchmarkCollidingSlope9x61(b *testing.B) {
	l := MustLayout(512, 61)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.CollidingSlope(i&511, (i+61)&511)
	}
}

func TestXorGroupsMatchesMaskLoop(t *testing.T) {
	rng := xrand.New(3)
	for _, cfg := range []struct{ n, b int }{{512, 61}, {512, 31}, {256, 23}, {40, 7}} {
		l := MustLayout(cfg.n, cfg.b)
		for trial := 0; trial < 20; trial++ {
			groups := bitvec.Random(l.B, rng)
			k := rng.Intn(l.B)
			data := bitvec.Random(l.N, rng)

			want := data.Clone()
			for _, y := range groups.OnesIndices() {
				want.Xor(want, l.GroupMask(y, k))
			}
			got := data.Clone()
			l.XorGroups(got, groups, k)
			if !got.Equal(want) {
				t.Fatalf("%s slope %d: XorGroups disagrees with per-group loop", l, k)
			}
		}
	}
}

func TestNewLayoutCached(t *testing.T) {
	a := MustLayout(512, 61)
	b := MustLayout(512, 61)
	if a != b {
		t.Fatal("NewLayout(512, 61) returned distinct instances; expected the shared cached layout")
	}
	if c := MustLayout(256, 23); c == a {
		t.Fatal("distinct configurations share a layout instance")
	}
}
