package plane_test

import (
	"fmt"

	"aegis/internal/plane"
)

// Build the paper's strongest 512-bit configuration and inspect it.
func ExampleNewLayout() {
	l, err := plane.NewLayout(512, 61)
	if err != nil {
		panic(err)
	}
	fmt.Println(l, "slopes:", l.Slopes(), "hard FTC:", l.HardFTC(), "overhead:", l.OverheadBits())
	// Output: 9x61 slopes: 61 hard FTC: 11 overhead: 67
}

// Theorem 2 in action: any two bits in different columns collide under
// exactly one slope, so a re-partition always separates them.
func ExampleLayout_CollidingSlope() {
	l := plane.MustLayout(32, 7)
	k, ok := l.CollidingSlope(3, 24)
	fmt.Println("collide:", ok, "at slope", k)
	fmt.Println("slope 1 separates them:", !l.SameGroup(3, 24, 1))
	// Output:
	// collide: true at slope 0
	// slope 1 separates them: true
}

// Group 0 under slope 0 is a rectangle row; under slope 1 the same
// anchor collects a diagonal — no bit beyond the anchor repeats
// (Theorem 2).
func ExampleLayout_GroupMembers() {
	l := plane.MustLayout(32, 7)
	fmt.Println(l.GroupMembers(0, 0)) // slope 0
	fmt.Println(l.GroupMembers(0, 1)) // slope 1
	// Output:
	// [0 7 14 21 28]
	// [0 8 16 24]
}

// ChooseB picks the smallest usable prime for a required slope count.
func ExampleChooseB() {
	// Hard FTC 10 needs C(10,2)+1 = 46 slopes.
	fmt.Println(plane.ChooseB(512, 46))
	// Output: 47
}
