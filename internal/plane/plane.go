// Package plane implements the Cartesian-plane partition scheme at the
// heart of Aegis (Fan et al., MICRO 2013, §2.1).
//
// An n-bit data block is laid out on an A×B rectangle with A = ⌈n/B⌉,
// A ≤ B and B prime.  Bit x of the block maps to the point
// (a, b) = (x / B, x mod B).  A partition configuration is a slope
// k ∈ [0, B); under slope k the point (a, b) belongs to the group whose
// anchor is y = (b − a·k) mod B.  Every configuration therefore has
// exactly B groups of at most A bits each.
//
// The two theorems the scheme rests on:
//
//   - Theorem 1: under any slope, every point is in exactly one group.
//   - Theorem 2: two distinct points that share a group under slope k are
//     in different groups under every slope k′ ≠ k.  (Two points in the
//     same column a never share a group at all.)
//
// Package plane also provides the lookup tables that the paper realizes as
// ROMs (Figures 3 and 4): bit→group per slope, group→member-mask per
// slope, and the bit-pair→colliding-slope table used by Aegis-rw (§2.4).
//
// Note: the paper prints the sizing constraint as "A(B−1) < n ≤ AB", but
// every configuration the paper actually uses (9×61, 17×31, 8×71 for
// 512-bit blocks, 12×23 for 256-bit) satisfies (A−1)·B < n ≤ A·B instead,
// i.e. A = ⌈n/B⌉.  We implement the latter.
package plane

import (
	"fmt"
	"math/bits"
	"sync"

	"aegis/internal/bitvec"
	"aegis/internal/prime"
)

// Layout describes an A×B Aegis partition scheme for an n-bit block.
type Layout struct {
	// N is the number of bits in the protected data block.
	N int
	// A is the rectangle width, ⌈N/B⌉.  Points have 0 ≤ a < A.
	A int
	// B is the rectangle height, a prime.  Points have 0 ≤ b < B.
	// B is also the number of slopes (partition configurations) and the
	// number of groups per configuration.
	B int

	// groupMasks[k][y] is the member mask of group y under slope k
	// (the "49×32-bit ROM" of Figure 4, generalized).  Precomputed at
	// construction so a Layout is safe for concurrent readers.
	groupMasks [][]*bitvec.Vector
}

// layoutCache shares constructed layouts across calls: the ROM tables
// are immutable after construction (the hardware analogy is literal —
// they are mask ROMs), so every factory protecting the same (n, B)
// configuration can use one copy.  Before this cache each experiment
// run rebuilt B² masks per roster entry, which dominated one-time
// allocation in steady-state heap profiles.
var layoutCache sync.Map // layoutKey -> *Layout

type layoutKey struct{ n, b int }

// NewLayout returns the A×B layout protecting an n-bit block, with
// A = ⌈n/B⌉.  It returns an error unless B is prime, A ≤ B, and the
// rectangle is large enough ((A−1)·B < n ≤ A·B holds by construction).
// Layouts are immutable and cached: repeated calls with the same (n, B)
// return the same shared instance.
func NewLayout(n, b int) (*Layout, error) {
	if n <= 0 {
		return nil, fmt.Errorf("plane: block size %d must be positive", n)
	}
	if !prime.IsPrime(b) {
		return nil, fmt.Errorf("plane: B = %d is not prime", b)
	}
	a := (n + b - 1) / b
	if a > b {
		return nil, fmt.Errorf("plane: A = ⌈%d/%d⌉ = %d exceeds B = %d (Theorem 2 requires A ≤ B)", n, b, a, b)
	}
	if cached, ok := layoutCache.Load(layoutKey{n, b}); ok {
		return cached.(*Layout), nil
	}
	l := &Layout{N: n, A: a, B: b}
	l.groupMasks = make([][]*bitvec.Vector, b)
	for k := 0; k < b; k++ {
		l.groupMasks[k] = make([]*bitvec.Vector, b)
		for y := 0; y < b; y++ {
			m := bitvec.New(n)
			for _, x := range l.GroupMembers(y, k) {
				m.Set(x, true)
			}
			l.groupMasks[k][y] = m
		}
	}
	// A racing constructor may have stored first; keep whichever won so
	// all callers share one instance.
	actual, _ := layoutCache.LoadOrStore(layoutKey{n, b}, l)
	return actual.(*Layout), nil
}

// MustLayout is NewLayout that panics on error, for configurations that
// are known valid at compile time (e.g. the paper's 9×61 for 512 bits).
func MustLayout(n, b int) *Layout {
	l, err := NewLayout(n, b)
	if err != nil {
		panic(err)
	}
	return l
}

// ChooseB returns the smallest prime B that provides at least minSlopes
// partition configurations for an n-bit block while keeping A = ⌈n/B⌉ ≤ B.
// This is how a scheme designer picks B for a required hard FTC.
func ChooseB(n, minSlopes int) int {
	b := prime.Next(max(2, minSlopes))
	for {
		if (n+b-1)/b <= b {
			return b
		}
		b = prime.Next(b + 1)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String names the layout in the paper's A×B notation.
func (l *Layout) String() string { return fmt.Sprintf("%dx%d", l.A, l.B) }

// Slopes returns the number of partition configurations (= B).
func (l *Layout) Slopes() int { return l.B }

// Groups returns the number of groups per configuration (= B).
func (l *Layout) Groups() int { return l.B }

// Point maps bit offset x to its plane coordinates (a, b).
func (l *Layout) Point(x int) (a, b int) {
	if x < 0 || x >= l.N {
		panic(fmt.Sprintf("plane: offset %d out of range [0,%d)", x, l.N))
	}
	return x / l.B, x % l.B
}

// Offset maps plane coordinates back to a bit offset.  ok is false for
// points of the rectangle that are not mapped to any bit (the rectangle
// can be up to B−1 positions larger than the block).
func (l *Layout) Offset(a, b int) (x int, ok bool) {
	if a < 0 || a >= l.A || b < 0 || b >= l.B {
		return 0, false
	}
	x = a*l.B + b
	if x >= l.N {
		return 0, false
	}
	return x, true
}

// Group returns the group (anchor y) of bit x under slope k:
// y = (b − a·k) mod B.
func (l *Layout) Group(x, k int) int {
	a, b := l.Point(x)
	l.checkSlope(k)
	return prime.Mod(b-a*k, l.B)
}

func (l *Layout) checkSlope(k int) {
	if k < 0 || k >= l.B {
		panic(fmt.Sprintf("plane: slope %d out of range [0,%d)", k, l.B))
	}
}

// GroupMembers returns the bit offsets belonging to group y under slope k,
// in ascending a order.  At most A offsets are returned; fewer when some
// of the group's rectangle points are unmapped.
func (l *Layout) GroupMembers(y, k int) []int {
	l.checkSlope(k)
	if y < 0 || y >= l.B {
		panic(fmt.Sprintf("plane: group %d out of range [0,%d)", y, l.B))
	}
	out := make([]int, 0, l.A)
	for a := 0; a < l.A; a++ {
		b := prime.Mod(a*k+y, l.B)
		if x, ok := l.Offset(a, b); ok {
			out = append(out, x)
		}
	}
	return out
}

// GroupMask returns a bit mask over the block with the members of group y
// under slope k set.  The mask is shared and precomputed; callers must not
// modify it.  This is the software equivalent of the member-bit ROM of
// Figure 4.
func (l *Layout) GroupMask(y, k int) *bitvec.Vector {
	l.checkSlope(k)
	if y < 0 || y >= l.B {
		panic(fmt.Sprintf("plane: group %d out of range [0,%d)", y, l.B))
	}
	return l.groupMasks[k][y]
}

// XorGroups folds the member masks of every group whose bit is set in
// groups (a B-bit vector) into dst under slope k: dst ^= ⊕ mask(y, k).
// This is the word-level form of the per-group GroupMask loop the
// schemes' write paths used to run — one call applies a whole inversion
// vector without allocating or materializing index slices.
func (l *Layout) XorGroups(dst *bitvec.Vector, groups *bitvec.Vector, k int) {
	l.checkSlope(k)
	if groups.Len() != l.B {
		panic(fmt.Sprintf("plane: group vector of %d bits, want B = %d", groups.Len(), l.B))
	}
	masks := l.groupMasks[k]
	for wi, w := range groups.Words() {
		for w != 0 {
			y := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			dst.XorInto(masks[y])
		}
	}
}

// CollidingSlope returns the unique slope under which distinct bits x1 and
// x2 share a group, and ok=true.  If the bits lie in the same column of
// the rectangle (a1 == a2) they never share a group and ok=false.
// This is the software equivalent of the n×n×⌈log₂B⌉ ROM of §2.4.
func (l *Layout) CollidingSlope(x1, x2 int) (k int, ok bool) {
	if x1 == x2 {
		panic("plane: CollidingSlope of a bit with itself")
	}
	a1, b1 := l.Point(x1)
	a2, b2 := l.Point(x2)
	if a1 == a2 {
		return 0, false
	}
	// Same group under k ⇔ (b1 − a1·k) ≡ (b2 − a2·k) (mod B)
	//                    ⇔ k ≡ (b1 − b2)·(a1 − a2)⁻¹ (mod B).
	inv := prime.ModInverse(a1-a2, l.B)
	return prime.Mod((b1-b2)*inv, l.B), true
}

// SameGroup reports whether bits x1 and x2 share a group under slope k.
func (l *Layout) SameGroup(x1, x2, k int) bool {
	return l.Group(x1, k) == l.Group(x2, k)
}

// CollisionFree reports whether every pair of the given (distinct) bit
// offsets lies in a different group under slope k.
func (l *Layout) CollisionFree(offsets []int, k int) bool {
	if len(offsets) > l.B {
		return false // pigeonhole: more faults than groups
	}
	var buf [64]int
	groups := buf[:0]
	if len(offsets) > len(buf) {
		groups = make([]int, 0, len(offsets))
	}
	for _, x := range offsets {
		g := l.Group(x, k)
		for _, seen := range groups {
			if seen == g {
				return false
			}
		}
		groups = append(groups, g)
	}
	return true
}

// FindCollisionFree searches the slopes starting at startK (wrapping
// around) for a configuration in which all offsets are in distinct
// groups.  It returns the slope and true, or 0 and false if no
// configuration separates them.  Aegis's re-partition is exactly this
// search performed one increment at a time.
func (l *Layout) FindCollisionFree(offsets []int, startK int) (int, bool) {
	for i := 0; i < l.B; i++ {
		k := (startK + i) % l.B
		if l.CollisionFree(offsets, k) {
			return k, true
		}
	}
	return 0, false
}

// HardFTC returns the guaranteed fault-tolerance capability of the layout:
// the largest f such that C(f,2)+1 ≤ B (§2.3).  With that many faults at
// most C(f,2) slopes can contain a collision, so a collision-free slope
// always exists.
func (l *Layout) HardFTC() int {
	f := 1
	for (f+1)*f/2+1 <= l.B {
		f++
	}
	return f
}

// HardFTCRW returns the guaranteed fault-tolerance capability of the
// layout when stuck-at-Right/stuck-at-Wrong fault types are known
// (Aegis-rw, §2.4): the largest f such that ⌊f/2⌋·⌈f/2⌉+1 ≤ B, since only
// W–R pairs must be separated and the worst split of f faults yields
// ⌊f/2⌋·⌈f/2⌉ pairs.
func (l *Layout) HardFTCRW() int {
	f := 1
	for (f+1)/2*((f+2)/2)+1 <= l.B {
		f++
	}
	return f
}

// OverheadBits returns the per-block bookkeeping cost of the layout as
// used by the base Aegis scheme: a ⌈log₂B⌉-bit slope counter plus a B-bit
// inversion vector (§2.3).
func (l *Layout) OverheadBits() int {
	return ceilLog2(l.B) + l.B
}

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

// CeilLog2 returns ⌈log₂ n⌉ (0 for n ≤ 1).  Exported for the cost model.
func CeilLog2(n int) int { return ceilLog2(n) }
