package plane

import (
	"testing"

	"aegis/internal/prime"
)

// TestTheoremsExhaustiveSmall proves Theorems 1 and 2 by enumeration for
// every valid layout with B ≤ 31 and n ≤ 200: every slope partitions the
// block exactly once, and every bit pair shares a group under at most
// one slope.  Combined with the property tests on the paper's 512-bit
// layouts, this grounds the scheme's two guarantees in checked fact.
func TestTheoremsExhaustiveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration in -short mode")
	}
	layouts := 0
	for _, b := range prime.PrimesUpTo(31) {
		for n := 2; n <= 200; n++ {
			l, err := NewLayout(n, b)
			if err != nil {
				continue // A > B: invalid, rejected
			}
			layouts++
			// Theorem 1.
			for k := 0; k < l.Slopes(); k++ {
				seen := make([]bool, n)
				for y := 0; y < l.Groups(); y++ {
					for _, x := range l.GroupMembers(y, k) {
						if seen[x] {
							t.Fatalf("%s slope %d: bit %d in two groups", l, k, x)
						}
						seen[x] = true
					}
				}
				for x := 0; x < n; x++ {
					if !seen[x] {
						t.Fatalf("%s slope %d: bit %d unassigned", l, k, x)
					}
				}
			}
			// Theorem 2.
			for x1 := 0; x1 < n; x1++ {
				for x2 := x1 + 1; x2 < n; x2++ {
					collisions := 0
					for k := 0; k < l.Slopes(); k++ {
						if l.Group(x1, k) == l.Group(x2, k) {
							collisions++
						}
					}
					if collisions > 1 {
						t.Fatalf("%s: bits %d,%d collide under %d slopes", l, x1, x2, collisions)
					}
					wantK, wantOK := l.CollidingSlope(x1, x2)
					if wantOK != (collisions == 1) {
						t.Fatalf("%s: CollidingSlope(%d,%d) ok=%v, found %d", l, x1, x2, wantOK, collisions)
					}
					if wantOK && l.Group(x1, wantK) != l.Group(x2, wantK) {
						t.Fatalf("%s: CollidingSlope(%d,%d)=%d is not a collision", l, x1, x2, wantK)
					}
				}
			}
		}
	}
	if layouts < 100 {
		t.Fatalf("only %d layouts enumerated; enumeration broken", layouts)
	}
}

// TestHardFTCGuaranteeExhaustive verifies the hard-FTC guarantee by
// brute force on a small layout: EVERY fault set of size HardFTC is
// separable.  (5×7 has C(32,4) = 35960 four-fault sets.)
func TestHardFTCGuaranteeExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration in -short mode")
	}
	l := MustLayout(32, 7)
	f := l.HardFTC() // 4
	if f != 4 {
		t.Fatalf("5x7 hard FTC = %d, want 4", f)
	}
	faults := make([]int, f)
	var rec func(start, depth int)
	checked := 0
	rec = func(start, depth int) {
		if depth == f {
			checked++
			if _, ok := l.FindCollisionFree(faults, 0); !ok {
				t.Fatalf("fault set %v defeats the hard FTC guarantee", faults)
			}
			return
		}
		for x := start; x < l.N; x++ {
			faults[depth] = x
			rec(x+1, depth+1)
		}
	}
	rec(0, 0)
	if checked != 35960 {
		t.Fatalf("checked %d sets, want C(32,4) = 35960", checked)
	}
}
