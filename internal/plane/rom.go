package plane

import "fmt"

// CollisionROM is the hardware lookup table §2.4 describes for Aegis-rw:
// an n×n×⌈log₂B⌉ ROM giving, for any pair of bit offsets, the unique
// slope on which they share a group (Theorem 2), or a no-collision
// sentinel for same-column pairs.  Package plane computes the same
// answer algebraically (CollidingSlope); this type materializes the ROM
// so its contents and silicon cost can be inspected and tested —
// "use one bit's address as the column address and the other bit's
// address as row address to read the slope from the ROM".
type CollisionROM struct {
	layout *Layout
	// entries is row-major n×n; NoCollision marks same-column pairs
	// and the diagonal.
	entries []uint16
}

// NoCollision is the sentinel stored for pairs that never share a group.
const NoCollision = ^uint16(0)

// BuildCollisionROM materializes the ROM for a layout.
func BuildCollisionROM(l *Layout) *CollisionROM {
	rom := &CollisionROM{
		layout:  l,
		entries: make([]uint16, l.N*l.N),
	}
	for x1 := 0; x1 < l.N; x1++ {
		for x2 := 0; x2 < l.N; x2++ {
			idx := x1*l.N + x2
			if x1 == x2 {
				rom.entries[idx] = NoCollision
				continue
			}
			if k, ok := l.CollidingSlope(x1, x2); ok {
				rom.entries[idx] = uint16(k)
			} else {
				rom.entries[idx] = NoCollision
			}
		}
	}
	return rom
}

// Lookup reads the ROM: the slope on which x1 and x2 collide, with
// ok=false for pairs that never do.
func (r *CollisionROM) Lookup(x1, x2 int) (slope int, ok bool) {
	if x1 < 0 || x1 >= r.layout.N || x2 < 0 || x2 >= r.layout.N {
		panic(fmt.Sprintf("plane: ROM lookup (%d,%d) out of range", x1, x2))
	}
	e := r.entries[x1*r.layout.N+x2]
	if e == NoCollision {
		return 0, false
	}
	return int(e), true
}

// SizeBits returns the ROM's storage cost as the paper counts it:
// n·n·⌈log₂B⌉ bits (the sentinel rides in an unused slope encoding).
// For Aegis 9×61 over 512-bit blocks this is 512·512·6 = 1.5 Mbit of
// chip-level (not per-block) ROM — the §2.4 cost of slope selection
// without trials.
func (r *CollisionROM) SizeBits() int {
	return r.layout.N * r.layout.N * CeilLog2(r.layout.B)
}

// GroupROM materializes the two ROMs of Figure 3: for every
// (slope, group) pair, the member-bit mask of the group (the paper's
// "49×32-bit ROM" for the 5×7 example) and the group's ID column.
// GroupMask already serves reads; GroupROM exposes the aggregate
// geometry and cost.
type GroupROM struct {
	layout *Layout
}

// BuildGroupROM wraps a layout's precomputed masks as the Figure 3/4
// ROM view.
func BuildGroupROM(l *Layout) *GroupROM { return &GroupROM{layout: l} }

// Rows returns the ROM's row count: one per (slope, group) combination,
// B² rows (49 in the paper's 5×7 illustration).
func (g *GroupROM) Rows() int { return g.layout.B * g.layout.B }

// MemberMaskBits returns the size of the member-mask ROM: B²·n bits.
func (g *GroupROM) MemberMaskBits() int { return g.Rows() * g.layout.N }

// Row returns row (slope, group) of the member-mask ROM as bit offsets.
func (g *GroupROM) Row(slope, group int) []int {
	return g.layout.GroupMembers(group, slope)
}
