package plane

import (
	"testing"

	"aegis/internal/prime"
)

// FuzzLayoutInvariants drives NewLayout and the group math with
// arbitrary parameters: construction either fails cleanly or yields a
// layout satisfying Theorems 1 and 2 on fuzz-chosen bit pairs.
func FuzzLayoutInvariants(f *testing.F) {
	f.Add(512, 61, 17, 401)
	f.Add(256, 23, 0, 255)
	f.Add(32, 7, 3, 24)
	f.Fuzz(func(t *testing.T, n, b, x1, x2 int) {
		if n < 1 || n > 4096 || b < 2 || b > 512 {
			return
		}
		l, err := NewLayout(n, b)
		if err != nil {
			return // invalid parameters must fail cleanly, not panic
		}
		if !prime.IsPrime(l.B) || l.A > l.B {
			t.Fatalf("accepted invalid layout %s", l)
		}
		x1 = ((x1 % n) + n) % n
		x2 = ((x2 % n) + n) % n
		if x1 == x2 {
			return
		}
		k, ok := l.CollidingSlope(x1, x2)
		collisions := 0
		for s := 0; s < l.Slopes(); s++ {
			if l.SameGroup(x1, x2, s) {
				collisions++
				if !ok || s != k {
					t.Fatalf("%s: collision at slope %d but CollidingSlope=(%d,%v)", l, s, k, ok)
				}
			}
		}
		if ok && collisions != 1 {
			t.Fatalf("%s: CollidingSlope ok but %d collisions", l, collisions)
		}
		if !ok && collisions != 0 {
			t.Fatalf("%s: CollidingSlope not-ok but %d collisions", l, collisions)
		}
	})
}
