package plane

import (
	"aegis/internal/xrand"
	"testing"

	"aegis/internal/prime"
)

// primesTo lists the primes in [2, n].
func primesTo(n int) []int {
	var out []int
	for p := 2; p <= n; p++ {
		if prime.IsPrime(p) {
			out = append(out, p)
		}
	}
	return out
}

// propertyLayouts enumerates every valid A×B formation with prime
// B ≤ 61 and 1 ≤ A ≤ B, each at its largest block size n = A·B (the
// case with no unmapped rectangle points) and, where different, at a
// ragged size n = A·B − (B−1)/2 that leaves part of the last column
// unmapped.  In -short mode the sweep subsamples A to keep the run
// quick.
func propertyLayouts(t *testing.T) []*Layout {
	t.Helper()
	var layouts []*Layout
	for _, b := range primesTo(61) {
		step := 1
		if testing.Short() {
			step = 4
		}
		for a := 1; a <= b; a += step {
			n := a * b
			l, err := NewLayout(n, b)
			if err != nil {
				t.Fatalf("NewLayout(%d, %d): %v", n, b, err)
			}
			if l.A != a {
				t.Fatalf("layout %d/%d derived A=%d, want %d", n, b, l.A, a)
			}
			layouts = append(layouts, l)
			if ragged := n - (b-1)/2; a > 1 && ragged > (a-1)*b {
				lr, err := NewLayout(ragged, b)
				if err != nil {
					t.Fatalf("NewLayout(%d, %d): %v", ragged, b, err)
				}
				layouts = append(layouts, lr)
			}
		}
	}
	return layouts
}

// TestTheorem1EveryPointInExactlyOneGroup: under every slope, the B
// groups partition the block — each bit appears in exactly one group's
// member list, and that group is Group(x, k).
func TestTheorem1EveryPointInExactlyOneGroup(t *testing.T) {
	for _, l := range propertyLayouts(t) {
		for k := 0; k < l.B; k++ {
			seen := make([]int, l.N)
			for y := 0; y < l.B; y++ {
				for _, x := range l.GroupMembers(y, k) {
					seen[x]++
					if g := l.Group(x, k); g != y {
						t.Fatalf("%s slope %d: bit %d listed in group %d but Group says %d", l, k, x, y, g)
					}
					if !l.GroupMask(y, k).Get(x) {
						t.Fatalf("%s slope %d: mask of group %d misses member %d", l, k, y, x)
					}
				}
			}
			for x, n := range seen {
				if n != 1 {
					t.Fatalf("%s slope %d: bit %d appears in %d groups, want exactly 1", l, k, x, n)
				}
			}
		}
	}
}

// TestTheorem2CollisionsNeverRepeat: a pair of distinct points that
// shares a group under slope k is separated under every other slope;
// same-column pairs never share a group at all.  Group co-membership of
// ((a1,b1),(a2,b2)) depends only on (a1−a2, b1−b2) mod B, so checking
// every pair against the representative x1 = (0, b1) covers all pair
// classes without the O(N²·B) full sweep; a random direct-pair sample
// guards the reduction itself.
func TestTheorem2CollisionsNeverRepeat(t *testing.T) {
	rng := xrand.New(1)
	for _, l := range propertyLayouts(t) {
		// Representative pairs: (0, 0) against every (da, b2).
		x1, ok := l.Offset(0, 0)
		if !ok {
			t.Fatalf("%s: origin unmapped", l)
		}
		for da := 0; da < l.A; da++ {
			for b2 := 0; b2 < l.B; b2++ {
				x2, ok := l.Offset(da, b2)
				if !ok || x2 == x1 {
					continue
				}
				checkPairSeparation(t, l, x1, x2)
			}
		}
		// Random direct pairs (both endpoints arbitrary).
		pairs := 50
		if testing.Short() {
			pairs = 10
		}
		for i := 0; i < pairs && l.N > 1; i++ {
			p1, p2 := rng.Intn(l.N), rng.Intn(l.N)
			if p1 == p2 {
				continue
			}
			checkPairSeparation(t, l, p1, p2)
		}
	}
}

// checkPairSeparation asserts Theorem 2 for one pair: at most one slope
// co-groups it, that slope matches CollidingSlope, and same-column
// pairs have none.
func checkPairSeparation(t *testing.T, l *Layout, x1, x2 int) {
	t.Helper()
	a1, _ := l.Point(x1)
	a2, _ := l.Point(x2)
	var together []int
	for k := 0; k < l.B; k++ {
		if l.SameGroup(x1, x2, k) {
			together = append(together, k)
		}
	}
	wantK, wantOK := l.CollidingSlope(x1, x2)
	if a1 == a2 {
		if len(together) != 0 {
			t.Fatalf("%s: same-column bits %d,%d share a group under slopes %v", l, x1, x2, together)
		}
		if wantOK {
			t.Fatalf("%s: CollidingSlope(%d,%d) = %d for a same-column pair", l, x1, x2, wantK)
		}
		return
	}
	if len(together) != 1 {
		t.Fatalf("%s: bits %d,%d share a group under %d slopes (%v), want exactly 1", l, x1, x2, len(together), together)
	}
	if !wantOK || wantK != together[0] {
		t.Fatalf("%s: CollidingSlope(%d,%d) = (%d,%v), exhaustive says %d", l, x1, x2, wantK, wantOK, together[0])
	}
}

// TestHardFTCSeparable: any fault set within the layout's hard FTC has
// a separating slope (the paper's §2.3 guarantee, sampled randomly).
func TestHardFTCSeparable(t *testing.T) {
	rng := xrand.New(2)
	for _, l := range propertyLayouts(t) {
		ftc := l.HardFTC()
		if ftc > l.N {
			ftc = l.N
		}
		trials := 20
		if testing.Short() {
			trials = 5
		}
		for i := 0; i < trials; i++ {
			faults := rng.Perm(l.N)[:ftc]
			if _, ok := l.FindCollisionFree(faults, rng.Intn(l.B)); !ok {
				t.Fatalf("%s: no separating slope for %d ≤ hardFTC=%d faults %v", l, len(faults), ftc, faults)
			}
		}
	}
}
