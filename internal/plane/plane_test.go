package plane

import (
	"aegis/internal/xrand"
	"testing"
	"testing/quick"
)

// paperLayouts are the A×B configurations the paper evaluates.
var paperLayouts = []struct {
	n, b, wantA int
}{
	{32, 7, 5},    // Figure 2 illustration
	{512, 23, 23}, // Aegis 23×23
	{512, 31, 17}, // Aegis 17×31
	{512, 61, 9},  // Aegis 9×61
	{512, 71, 8},  // Aegis 8×71
	{256, 23, 12}, // Aegis 12×23
	{256, 31, 9},  // Aegis 9×31
}

func TestNewLayoutPaperConfigs(t *testing.T) {
	for _, c := range paperLayouts {
		l, err := NewLayout(c.n, c.b)
		if err != nil {
			t.Fatalf("NewLayout(%d, %d): %v", c.n, c.b, err)
		}
		if l.A != c.wantA {
			t.Errorf("NewLayout(%d, %d).A = %d, want %d", c.n, c.b, l.A, c.wantA)
		}
		if (l.A-1)*l.B >= c.n || l.A*l.B < c.n {
			t.Errorf("%s does not satisfy (A-1)B < n <= AB for n=%d", l, c.n)
		}
	}
}

func TestNewLayoutErrors(t *testing.T) {
	if _, err := NewLayout(512, 24); err == nil {
		t.Error("non-prime B accepted")
	}
	if _, err := NewLayout(512, 19); err == nil {
		t.Error("A > B accepted (512 needs A=27 for B=19)")
	}
	if _, err := NewLayout(0, 7); err == nil {
		t.Error("zero-size block accepted")
	}
	if _, err := NewLayout(-8, 7); err == nil {
		t.Error("negative block accepted")
	}
}

func TestMustLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLayout with invalid B did not panic")
		}
	}()
	MustLayout(512, 24)
}

func TestChooseB(t *testing.T) {
	// For 512-bit blocks, the minimum usable prime is 23 (B=19 gives A=27>19).
	if got := ChooseB(512, 2); got != 23 {
		t.Errorf("ChooseB(512, 2) = %d, want 23", got)
	}
	// Hard FTC 8 needs C(8,2)+1 = 29 slopes -> B = 29.
	if got := ChooseB(512, 29); got != 29 {
		t.Errorf("ChooseB(512, 29) = %d, want 29", got)
	}
	// Hard FTC 10 needs 46 slopes -> B = 47.
	if got := ChooseB(512, 46); got != 47 {
		t.Errorf("ChooseB(512, 46) = %d, want 47", got)
	}
	if got := ChooseB(256, 2); got != 17 {
		// 256: B=17 -> A=16 <= 17 OK; B=13 -> A=20 > 13.
		t.Errorf("ChooseB(256, 2) = %d, want 17", got)
	}
}

func TestPointOffsetRoundTrip(t *testing.T) {
	l := MustLayout(512, 61)
	for x := 0; x < l.N; x++ {
		a, b := l.Point(x)
		if a < 0 || a >= l.A || b < 0 || b >= l.B {
			t.Fatalf("Point(%d) = (%d,%d) outside rectangle", x, a, b)
		}
		back, ok := l.Offset(a, b)
		if !ok || back != x {
			t.Fatalf("Offset(Point(%d)) = %d, ok=%v", x, back, ok)
		}
	}
}

func TestOffsetUnmapped(t *testing.T) {
	l := MustLayout(32, 7) // 5×7 rectangle, 3 unmapped points
	unmapped := 0
	for a := 0; a < l.A; a++ {
		for b := 0; b < l.B; b++ {
			if _, ok := l.Offset(a, b); !ok {
				unmapped++
			}
		}
	}
	if unmapped != 3 {
		t.Fatalf("5×7 layout for 32 bits has %d unmapped points, want 3", unmapped)
	}
	if _, ok := l.Offset(-1, 0); ok {
		t.Error("Offset(-1,0) should not be ok")
	}
	if _, ok := l.Offset(0, 7); ok {
		t.Error("Offset(0,B) should not be ok")
	}
}

// Theorem 1: under any slope, every bit is in exactly one group, and the
// union of all groups covers every bit exactly once.
func TestTheorem1Partition(t *testing.T) {
	for _, c := range paperLayouts {
		l := MustLayout(c.n, c.b)
		for k := 0; k < l.Slopes(); k++ {
			seen := make([]int, l.N)
			for y := 0; y < l.Groups(); y++ {
				for _, x := range l.GroupMembers(y, k) {
					seen[x]++
					if got := l.Group(x, k); got != y {
						t.Fatalf("%s slope %d: bit %d listed in group %d but Group()=%d", l, k, x, y, got)
					}
				}
			}
			for x, cnt := range seen {
				if cnt != 1 {
					t.Fatalf("%s slope %d: bit %d covered %d times", l, k, x, cnt)
				}
			}
		}
	}
}

// Theorem 2: two distinct bits share a group under at most one slope.
func TestTheorem2AtMostOneCollision(t *testing.T) {
	l := MustLayout(32, 7) // small enough for exhaustive pairs × slopes
	for x1 := 0; x1 < l.N; x1++ {
		for x2 := x1 + 1; x2 < l.N; x2++ {
			collisions := 0
			var at int
			for k := 0; k < l.Slopes(); k++ {
				if l.SameGroup(x1, x2, k) {
					collisions++
					at = k
				}
			}
			wantK, wantOK := l.CollidingSlope(x1, x2)
			if collisions > 1 {
				t.Fatalf("bits %d,%d collide under %d slopes", x1, x2, collisions)
			}
			if wantOK != (collisions == 1) {
				t.Fatalf("CollidingSlope(%d,%d) ok=%v but found %d collisions", x1, x2, wantOK, collisions)
			}
			if wantOK && wantK != at {
				t.Fatalf("CollidingSlope(%d,%d) = %d, but collision is at slope %d", x1, x2, wantK, at)
			}
		}
	}
}

// Property form of Theorem 2 on the paper's big layouts: random pairs,
// CollidingSlope agrees with brute force.
func TestPropTheorem2(t *testing.T) {
	layouts := []*Layout{MustLayout(512, 61), MustLayout(512, 23), MustLayout(256, 31)}
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		l := layouts[rng.Intn(len(layouts))]
		x1 := rng.Intn(l.N)
		x2 := rng.Intn(l.N)
		if x1 == x2 {
			return true
		}
		k, ok := l.CollidingSlope(x1, x2)
		count := 0
		for s := 0; s < l.Slopes(); s++ {
			if l.SameGroup(x1, x2, s) {
				if !ok || s != k {
					return false
				}
				count++
			}
		}
		if ok {
			return count == 1
		}
		return count == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Bits in the same column (same a) never share a group under any slope.
func TestSameColumnNeverCollides(t *testing.T) {
	l := MustLayout(512, 61)
	for a := 0; a < l.A; a++ {
		x1, ok1 := l.Offset(a, 0)
		x2, ok2 := l.Offset(a, 1)
		if !ok1 || !ok2 {
			continue
		}
		if _, ok := l.CollidingSlope(x1, x2); ok {
			t.Fatalf("same-column bits %d,%d report a colliding slope", x1, x2)
		}
		for k := 0; k < l.Slopes(); k++ {
			if l.SameGroup(x1, x2, k) {
				t.Fatalf("same-column bits %d,%d share group under slope %d", x1, x2, k)
			}
		}
	}
}

func TestGroupMaskMatchesMembers(t *testing.T) {
	l := MustLayout(256, 23)
	for k := 0; k < l.Slopes(); k++ {
		for y := 0; y < l.Groups(); y++ {
			mask := l.GroupMask(y, k)
			members := l.GroupMembers(y, k)
			if mask.PopCount() != len(members) {
				t.Fatalf("slope %d group %d: mask has %d bits, members %d", k, y, mask.PopCount(), len(members))
			}
			for _, x := range members {
				if !mask.Get(x) {
					t.Fatalf("slope %d group %d: member %d missing from mask", k, y, x)
				}
			}
		}
	}
}

func TestGroupSizeBounds(t *testing.T) {
	for _, c := range paperLayouts {
		l := MustLayout(c.n, c.b)
		for k := 0; k < l.Slopes(); k++ {
			for y := 0; y < l.Groups(); y++ {
				if n := len(l.GroupMembers(y, k)); n > l.A {
					t.Fatalf("%s: group size %d exceeds A=%d", l, n, l.A)
				}
			}
		}
	}
}

func TestCollisionFree(t *testing.T) {
	l := MustLayout(512, 23)
	// Construct two bits guaranteed to collide under slope 0: same b, different a.
	x1, _ := l.Offset(0, 5)
	x2, _ := l.Offset(1, 5)
	if l.CollisionFree([]int{x1, x2}, 0) {
		t.Fatal("same-row bits should collide under slope 0")
	}
	k, ok := l.FindCollisionFree([]int{x1, x2}, 0)
	if !ok || k == 0 {
		t.Fatalf("FindCollisionFree = (%d,%v), want nonzero slope", k, ok)
	}
	if !l.CollisionFree([]int{x1, x2}, k) {
		t.Fatal("returned slope still collides")
	}
	// Empty and singleton sets are always collision free.
	if !l.CollisionFree(nil, 0) || !l.CollisionFree([]int{7}, 0) {
		t.Fatal("trivial sets should be collision free")
	}
}

func TestCollisionFreePigeonhole(t *testing.T) {
	l := MustLayout(512, 23)
	offsets := make([]int, l.B+1)
	for i := range offsets {
		offsets[i] = i
	}
	if l.CollisionFree(offsets, 0) {
		t.Fatal("more offsets than groups cannot be collision free")
	}
}

// Hard FTC guarantee: for ANY fault set of size ≤ HardFTC, a collision-free
// slope exists.  Tested probabilistically with random fault sets.
func TestPropHardFTCGuarantee(t *testing.T) {
	layouts := []*Layout{MustLayout(512, 23), MustLayout(512, 61), MustLayout(256, 31)}
	f := func(seed int64) bool {
		rng := xrand.New(seed)
		l := layouts[rng.Intn(len(layouts))]
		fmax := l.HardFTC()
		// Random distinct fault positions.
		perm := rng.Perm(l.N)[:fmax]
		_, ok := l.FindCollisionFree(perm, rng.Intn(l.Slopes()))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHardFTCValues(t *testing.T) {
	cases := []struct {
		n, b, want, wantRW int
	}{
		{512, 23, 7, 9},  // C(7,2)+1=22 ≤ 23; rw: ⌊9/2⌋·⌈9/2⌉+1=21 ≤ 23
		{512, 29, 8, 10}, // C(8,2)+1=29 ≤ 29; rw: 5·5+1=26 ≤ 29
		{512, 31, 8, 11}, // rw: ⌊11/2⌋·⌈11/2⌉+1 = 31 ≤ 31
		{512, 37, 9, 12}, // C(9,2)+1=37; rw: 6·6+1=37 ≤ 37
		{512, 47, 10, 13},
		{512, 61, 11, 15}, // C(11,2)+1=56 ≤ 61; rw: 7·8+1=57 ≤ 61
		{512, 71, 12, 16},
	}
	for _, c := range cases {
		l := MustLayout(c.n, c.b)
		if got := l.HardFTC(); got != c.want {
			t.Errorf("%s HardFTC = %d, want %d", l, got, c.want)
		}
		if got := l.HardFTCRW(); got != c.wantRW {
			t.Errorf("%s HardFTCRW = %d, want %d", l, got, c.wantRW)
		}
	}
}

func TestOverheadBits(t *testing.T) {
	// §2.3 / Figure 5 captions: 9×61 -> 67 bits, 17×31 -> 36, 23×23 -> 28,
	// 12×23 -> 28, 8×71 -> 78.
	cases := []struct{ n, b, want int }{
		{512, 61, 67},
		{512, 31, 36},
		{512, 23, 28},
		{256, 23, 28},
		{512, 71, 78},
	}
	for _, c := range cases {
		l := MustLayout(c.n, c.b)
		if got := l.OverheadBits(); got != c.want {
			t.Errorf("%s OverheadBits = %d, want %d", l, got, c.want)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 23: 5, 61: 6, 64: 6, 65: 7}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFigure2Illustration(t *testing.T) {
	// The paper's Figure 2: 32 bits on 5×7, 7 groups of 5 bits (some of 4,
	// because of the 3 unmapped points).
	l := MustLayout(32, 7)
	if l.Slopes() != 7 || l.Groups() != 7 {
		t.Fatalf("5×7 layout: slopes=%d groups=%d, want 7,7", l.Slopes(), l.Groups())
	}
	total := 0
	for y := 0; y < 7; y++ {
		total += len(l.GroupMembers(y, 0))
	}
	if total != 32 {
		t.Fatalf("slope-0 groups cover %d bits, want 32", total)
	}
}

func TestSlopeRangePanics(t *testing.T) {
	l := MustLayout(32, 7)
	for _, f := range []func(){
		func() { l.Group(0, 7) },
		func() { l.Group(0, -1) },
		func() { l.Group(32, 0) },
		func() { l.GroupMembers(7, 0) },
		func() { l.GroupMask(0, 7) },
		func() { l.CollidingSlope(3, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkGroup(b *testing.B) {
	l := MustLayout(512, 61)
	for i := 0; i < b.N; i++ {
		_ = l.Group(i%512, i%61)
	}
}

func BenchmarkFindCollisionFree(b *testing.B) {
	l := MustLayout(512, 61)
	rng := xrand.New(1)
	faults := rng.Perm(512)[:10]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.FindCollisionFree(faults, i%61)
	}
}
