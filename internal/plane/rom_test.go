package plane

import (
	"aegis/internal/xrand"
	"testing"
)

func TestCollisionROMMatchesAlgebraExhaustive(t *testing.T) {
	l := MustLayout(32, 7)
	rom := BuildCollisionROM(l)
	for x1 := 0; x1 < l.N; x1++ {
		for x2 := 0; x2 < l.N; x2++ {
			if x1 == x2 {
				if _, ok := rom.Lookup(x1, x2); ok {
					t.Fatalf("diagonal (%d,%d) reports a collision", x1, x2)
				}
				continue
			}
			wantK, wantOK := l.CollidingSlope(x1, x2)
			gotK, gotOK := rom.Lookup(x1, x2)
			if wantOK != gotOK || (wantOK && wantK != gotK) {
				t.Fatalf("ROM(%d,%d) = (%d,%v), algebra = (%d,%v)", x1, x2, gotK, gotOK, wantK, wantOK)
			}
		}
	}
}

func TestCollisionROMSampled512(t *testing.T) {
	l := MustLayout(512, 61)
	rom := BuildCollisionROM(l)
	rng := xrand.New(1)
	for i := 0; i < 5000; i++ {
		x1, x2 := rng.Intn(512), rng.Intn(512)
		if x1 == x2 {
			continue
		}
		wantK, wantOK := l.CollidingSlope(x1, x2)
		gotK, gotOK := rom.Lookup(x1, x2)
		if wantOK != gotOK || (wantOK && wantK != gotK) {
			t.Fatalf("ROM(%d,%d) = (%d,%v), algebra = (%d,%v)", x1, x2, gotK, gotOK, wantK, wantOK)
		}
	}
}

func TestCollisionROMSymmetric(t *testing.T) {
	l := MustLayout(256, 23)
	rom := BuildCollisionROM(l)
	rng := xrand.New(2)
	for i := 0; i < 2000; i++ {
		x1, x2 := rng.Intn(256), rng.Intn(256)
		k1, ok1 := rom.Lookup(x1, x2)
		k2, ok2 := rom.Lookup(x2, x1)
		if x1 == x2 {
			continue
		}
		if ok1 != ok2 || (ok1 && k1 != k2) {
			t.Fatalf("ROM not symmetric at (%d,%d)", x1, x2)
		}
	}
}

func TestCollisionROMSizeBits(t *testing.T) {
	// §2.4's n×n×⌈log₂B⌉: 512·512·6 for Aegis 9×61.
	rom := BuildCollisionROM(MustLayout(512, 61))
	if got := rom.SizeBits(); got != 512*512*6 {
		t.Fatalf("SizeBits = %d, want %d", got, 512*512*6)
	}
}

func TestCollisionROMLookupPanics(t *testing.T) {
	rom := BuildCollisionROM(MustLayout(32, 7))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rom.Lookup(32, 0)
}

func TestGroupROMGeometry(t *testing.T) {
	// Figure 3's illustration: the 5×7 scheme uses a 49-row ROM of
	// 32-bit member masks.
	l := MustLayout(32, 7)
	g := BuildGroupROM(l)
	if g.Rows() != 49 {
		t.Fatalf("Rows = %d, want 49", g.Rows())
	}
	if g.MemberMaskBits() != 49*32 {
		t.Fatalf("MemberMaskBits = %d, want %d", g.MemberMaskBits(), 49*32)
	}
	// Every ROM row matches the algebraic group membership.
	for k := 0; k < l.Slopes(); k++ {
		for y := 0; y < l.Groups(); y++ {
			row := g.Row(k, y)
			want := l.GroupMembers(y, k)
			if len(row) != len(want) {
				t.Fatalf("row (%d,%d) = %v, want %v", k, y, row, want)
			}
			for i := range row {
				if row[i] != want[i] {
					t.Fatalf("row (%d,%d) = %v, want %v", k, y, row, want)
				}
			}
		}
	}
}
