// Package freep models FREE-p (Yoon et al., HPCA 2011), the OS-assisted
// block remapping scheme the paper's §4 discusses: once a data block's
// in-block protection is exhausted, accesses are redirected to a spare
// block "via a pointer embedded in the faulty block" — the dead block
// still has plenty of working cells to hold a pointer written with
// modular redundancy.
//
// The paper's point about FREE-p is relational: "With Aegis's strong
// fault tolerance capability, the re-direction as well as loss of faulty
// pages can be substantially delayed."  The `freep` experiment measures
// exactly that trade: spare blocks are expensive (a whole data block plus
// its scheme overhead each), so bits spent upgrading the in-block scheme
// go further than bits spent on spares.
package freep

import (
	"aegis/internal/xrand"
	"fmt"

	"aegis/internal/bitvec"
	"aegis/internal/dist"
	"aegis/internal/pcm"
	"aegis/internal/plane"
	"aegis/internal/scheme"
)

// pointerRedundancy is the modular redundancy FREE-p writes the embedded
// pointer with (the FREE-p paper uses 7-way voting).
const pointerRedundancy = 7

// Manager tracks the remapping state of one page: which primary blocks
// have been redirected and how many spares remain.
type Manager struct {
	blockBits int
	spares    int
	used      int
	// remapped[i] counts how many times primary slot i was redirected
	// (a spare can itself die and chain to another spare).
	remapped []int
	// chainWrites counts pointer-embedding writes.
	chainWrites int64
}

// NewManager returns a FREE-p manager for a page of nBlocks primary
// blocks with the given spare budget.
func NewManager(nBlocks, blockBits, spares int) (*Manager, error) {
	if nBlocks <= 0 || blockBits <= 0 || spares < 0 {
		return nil, fmt.Errorf("freep: bad geometry (%d blocks, %d bits, %d spares)", nBlocks, blockBits, spares)
	}
	return &Manager{
		blockBits: blockBits,
		spares:    spares,
		remapped:  make([]int, nBlocks),
	}, nil
}

// SparesLeft returns the remaining spare budget.
func (m *Manager) SparesLeft() int { return m.spares - m.used }

// Remaps returns how many redirections slot i has accumulated.
func (m *Manager) Remaps(i int) int { return m.remapped[i] }

// ChainWrites returns the pointer-embedding writes performed.
func (m *Manager) ChainWrites() int64 { return m.chainWrites }

// PointerStorable reports whether the dead block has enough healthy
// cells to hold the redirection pointer with full redundancy — FREE-p's
// feasibility condition.  Blocks die with a few dozen stuck cells out of
// hundreds, so this essentially always holds; it is checked, not
// assumed.
func (m *Manager) PointerStorable(blk *pcm.Block) bool {
	need := pointerRedundancy * (plane.CeilLog2(m.blockBits) + 1)
	return blk.Size()-blk.FaultCount() >= need
}

// Redirect consumes a spare for primary slot i, embedding the pointer in
// the dead block.  It reports false when no spare remains or the pointer
// cannot be stored.
func (m *Manager) Redirect(i int, dead *pcm.Block) bool {
	if m.used >= m.spares || !m.PointerStorable(dead) {
		return false
	}
	m.used++
	m.remapped[i]++
	m.chainWrites++
	return true
}

// OverheadBits returns the page-level cost of the spare provisioning:
// each spare is a full data block plus its scheme's overhead bits.
func OverheadBits(blockBits, schemeOverhead, spares int) int {
	return spares * (blockBits + schemeOverhead)
}

// PageResult describes one FREE-p page written to death.
type PageResult struct {
	// Lifetime is the number of successful page writes.
	Lifetime int64
	// Redirections is the number of spare activations.
	Redirections int
}

// SimulatePage writes random data into a page of scheme-protected blocks
// until a block dies with no spare left.  A dying block is redirected to
// a fresh spare block (unworn cells, fresh scheme instance) and the write
// retries there, as FREE-p's nearly-free read path implies.  Wear is
// request-scoped, as everywhere in this repository.
func SimulatePage(nBlocks, blockBits, spares int, f scheme.Factory, meanLife, cov float64, rng *xrand.Rand) (PageResult, error) {
	m, err := NewManager(nBlocks, blockBits, spares)
	if err != nil {
		return PageResult{}, err
	}
	ld := dist.Normal{MeanLife: meanLife, CoV: cov}
	blocks := make([]*pcm.Block, nBlocks)
	schemes := make([]scheme.Scheme, nBlocks)
	for i := range blocks {
		blocks[i] = pcm.NewBlock(blockBits, ld, rng)
		schemes[i] = f.New()
	}
	data := bitvec.New(blockBits)
	var writes int64
	for {
		alive := true
		for i := range blocks {
			randomize(data, rng)
			for {
				blocks[i].BeginRequest()
				err := schemes[i].Write(blocks[i], data)
				blocks[i].EndRequest()
				if err == nil {
					break
				}
				if !m.Redirect(i, blocks[i]) {
					alive = false
					break
				}
				// Spare activated: fresh cells, fresh scheme; retry.
				blocks[i] = pcm.NewBlock(blockBits, ld, rng)
				schemes[i] = f.New()
			}
			if !alive {
				break
			}
		}
		if !alive {
			break
		}
		writes++
	}
	redirs := 0
	for i := range blocks {
		redirs += m.Remaps(i)
	}
	return PageResult{Lifetime: writes, Redirections: redirs}, nil
}

func randomize(data *bitvec.Vector, rng *xrand.Rand) {
	words := data.Words()
	rng.Fill(words)
	if r := data.Len() % 64; r != 0 {
		words[len(words)-1] &= (uint64(1) << uint(r)) - 1
	}
}
