package freep

import (
	"aegis/internal/xrand"
	"testing"

	"aegis/internal/core"
	"aegis/internal/ecp"
	"aegis/internal/pcm"
)

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(0, 512, 1); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := NewManager(4, 512, -1); err == nil {
		t.Error("negative spares accepted")
	}
}

func TestRedirectConsumesSpares(t *testing.T) {
	m, err := NewManager(4, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	dead := pcm.NewImmortalBlock(512)
	if !m.Redirect(1, dead) || !m.Redirect(1, dead) {
		t.Fatal("redirect failed with spares left")
	}
	if m.Redirect(2, dead) {
		t.Fatal("redirect succeeded with no spares")
	}
	if m.SparesLeft() != 0 || m.Remaps(1) != 2 || m.ChainWrites() != 2 {
		t.Fatalf("state: left=%d remaps=%d chains=%d", m.SparesLeft(), m.Remaps(1), m.ChainWrites())
	}
}

func TestPointerStorable(t *testing.T) {
	m, _ := NewManager(1, 512, 1)
	blk := pcm.NewImmortalBlock(512)
	if !m.PointerStorable(blk) {
		t.Fatal("healthy block cannot store pointer")
	}
	// Kill almost every cell: 7×10 = 70 healthy cells needed.
	for i := 0; i < 512-60; i++ {
		blk.InjectFault(i, true)
	}
	if m.PointerStorable(blk) {
		t.Fatal("nearly-dead block claimed storable")
	}
	if m.Redirect(0, blk) {
		t.Fatal("redirect succeeded without pointer room")
	}
}

func TestOverheadBits(t *testing.T) {
	// 2 spares of 512-bit blocks under ECP6 (61 bits) = 2 × 573.
	if got := OverheadBits(512, 61, 2); got != 1146 {
		t.Fatalf("OverheadBits = %d", got)
	}
}

func TestSimulatePageSparesExtendLifetime(t *testing.T) {
	f := ecp.MustFactory(512, 2)
	run := func(spares int) int64 {
		rng := xrand.New(5)
		res, err := SimulatePage(8, 512, spares, f, 400, 0.25, rng)
		if err != nil {
			t.Fatal(err)
		}
		if spares > 0 && res.Redirections == 0 {
			t.Fatal("no redirections recorded")
		}
		return res.Lifetime
	}
	without := run(0)
	with := run(4)
	if with <= without {
		t.Fatalf("4 spares did not extend page life: %d vs %d", with, without)
	}
}

func TestSimulatePageStrongSchemeDelaysRedirection(t *testing.T) {
	// §4: a strong in-block scheme substantially delays redirection —
	// at equal spare budgets, Aegis pages redirect later and live longer.
	weak := ecp.MustFactory(512, 1)
	strong := core.MustFactory(512, 61)
	rngW := xrand.New(9)
	rngS := xrand.New(9)
	w, err := SimulatePage(8, 512, 2, weak, 400, 0.25, rngW)
	if err != nil {
		t.Fatal(err)
	}
	s, err := SimulatePage(8, 512, 2, strong, 400, 0.25, rngS)
	if err != nil {
		t.Fatal(err)
	}
	if s.Lifetime <= w.Lifetime {
		t.Fatalf("Aegis+spares (%d) not above ECP1+spares (%d)", s.Lifetime, w.Lifetime)
	}
}

func TestSimulatePageValidation(t *testing.T) {
	if _, err := SimulatePage(0, 512, 1, ecp.MustFactory(512, 1), 100, 0.25, xrand.New(1)); err == nil {
		t.Fatal("zero blocks accepted")
	}
}
