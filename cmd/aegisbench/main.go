// Command aegisbench runs the reproduction harness: it regenerates any
// table or figure of the paper's evaluation and prints it as an aligned
// ASCII table (optionally exporting CSV).
//
// Usage:
//
//	aegisbench -exp table1
//	aegisbench -exp fig5 -preset default
//	aegisbench -exp all -preset quick -csv out/
//	aegisbench -list
//
// Experiments: table1, fig2, fig5…fig13, all.  Presets scale the Monte
// Carlo effort (see DESIGN.md §3 on lifetime scaling): quick (seconds),
// default (minutes, the README numbers), full (closer to paper scale).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"aegis/internal/experiments"
	"aegis/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aegisbench:", err)
		os.Exit(1)
	}
}

// writeSeriesCSV exports figure curves in long form: series, x, y.
func writeSeriesCSV(w io.Writer, series []stats.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, pt := range s.Points {
			rec := []string{
				s.Name,
				strconv.FormatFloat(pt.X, 'g', -1, 64),
				strconv.FormatFloat(pt.Y, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("aegisbench", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment to run: "+strings.Join(experiments.IDs, ", ")+", or all")
		preset  = fs.String("preset", "default", "effort preset: quick, default, full")
		seed    = fs.Int64("seed", 0, "override the preset's RNG seed (0 = keep preset seed)")
		workers = fs.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
		csvDir  = fs.String("csv", "", "also write each table as CSV into this directory")
		format  = fs.String("format", "text", "table output format: text or md (markdown)")
		list    = fs.Bool("list", false, "list experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "paper experiments:")
		for _, id := range experiments.IDs {
			fmt.Fprintf(out, "  %s\n", id)
		}
		fmt.Fprintln(out, "ablations:")
		for _, id := range experiments.AblationIDs {
			fmt.Fprintf(out, "  %s\n", id)
		}
		fmt.Fprintln(out, "  all  (every paper experiment)")
		return nil
	}

	var p experiments.Params
	switch *preset {
	case "quick":
		p = experiments.Quick()
	case "default":
		p = experiments.Default()
	case "full":
		p = experiments.Full()
	default:
		return fmt.Errorf("unknown preset %q (quick, default, full)", *preset)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p.Workers = *workers

	start := time.Now()
	result, err := experiments.Run(*exp, p)
	if err != nil {
		return err
	}
	for _, tbl := range result.Tables {
		var rerr error
		switch *format {
		case "text":
			rerr = tbl.Render(out)
		case "md":
			rerr = tbl.RenderMarkdown(out)
		default:
			return fmt.Errorf("unknown format %q (text, md)", *format)
		}
		if rerr != nil {
			return rerr
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for i, tbl := range result.Tables {
			name := fmt.Sprintf("%s_%02d.csv", *exp, i)
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				return err
			}
			werr := tbl.WriteCSV(f)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
		}
		written := len(result.Tables)
		if len(result.Series) > 0 {
			name := fmt.Sprintf("%s_series.csv", *exp)
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				return err
			}
			werr := writeSeriesCSV(f, result.Series)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
			written++
		}
		fmt.Fprintf(out, "wrote %d CSV file(s) to %s\n", written, *csvDir)
	}
	fmt.Fprintf(out, "done in %v (preset %s, seed %d)\n", time.Since(start).Round(time.Millisecond), *preset, p.Seed)
	return nil
}
