// Command aegisbench runs the reproduction harness: it regenerates any
// table or figure of the paper's evaluation and prints it as an aligned
// ASCII table (optionally exporting CSV and a machine-readable JSON run
// manifest).
//
// Usage:
//
//	aegisbench -exp table1
//	aegisbench -exp fig5 -preset default
//	aegisbench -exp all -preset quick -csv out/
//	aegisbench -exp table1 -json results/
//	aegisbench -exp all -preset full -cpuprofile cpu.out -http localhost:6060
//	aegisbench -list
//
// Experiments: table1, fig2, fig5…fig13, all.  Presets scale the Monte
// Carlo effort (see DESIGN.md §3 on lifetime scaling): quick (seconds),
// default (minutes, the README numbers), full (closer to paper scale).
//
// -json DIR serializes the run to DIR/<exp>.json: config, seed, git SHA,
// Go version, wall/CPU time, per-scheme operation counters, per-scheme
// histograms and every result row (see DESIGN.md §"Run manifests" for
// the schema).  -events FILE streams sampled scheme decision events
// (repartitions, inversions, salvages, deaths) as aegis.events/v1 JSONL;
// -sample N keeps one event in every N.
// -shards N splits every simulation's trial range into N deterministic
// shards — results are byte-identical at any shard count, because each
// trial's RNG derives from its global trial index.  -cache-dir DIR
// persists each completed shard as a content-addressed aegis.shard/v1
// file; -resume loads the shards that already exist instead of
// recomputing them, so an interrupted run finishes from where it was
// killed and an unchanged rerun reports 100% cache hits (see DESIGN.md
// §"Sharded runs").  -shard-workers N computes N shards concurrently
// (default NumCPU); like the shard count, the worker count never
// changes results.
//
// -cpuprofile/-memprofile/-trace write standard Go profiles.
// -memprofile first performs a warm-up run and snapshots its heap to
// <path>.warmup; diff the final profile against it
// (go tool pprof -diff_base <path>.warmup <path>) to see the measured
// run's steady-state allocations instead of one-time cache and layout
// construction.  -http serves the same operational surface as aegisd:
// GET /metrics (Prometheus text exposition, including the run's live
// trial progress and per-scheme counters), expvar ("aegis.counters")
// at /debug/vars, live run progress as JSON (/debug/aegis/progress)
// and net/http/pprof for inspection of long runs.  A progress line
// (trials done, rate, ETA) renders on stderr
// when it is a terminal; -progress overrides the interval.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"aegis/internal/engine"
	"aegis/internal/experiments"
	"aegis/internal/obs"
	"aegis/internal/report"
	"aegis/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aegisbench:", err)
		os.Exit(1)
	}
}

// writeSeriesCSV exports figure curves in long form: series, x, y.
func writeSeriesCSV(w io.Writer, series []stats.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, pt := range s.Points {
			rec := []string{
				s.Name,
				strconv.FormatFloat(pt.X, 'g', -1, 64),
				strconv.FormatFloat(pt.Y, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("aegisbench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment to run: "+strings.Join(experiments.IDs, ", ")+", or all")
		preset     = fs.String("preset", "default", "effort preset: quick, default, full")
		seed       = fs.Int64("seed", 0, "override the preset's RNG seed (0 = keep preset seed)")
		workers    = fs.Int("workers", 0, "simulation worker goroutines (0 = GOMAXPROCS)")
		lanes      = fs.Int("lanes", 0, "bit-sliced trial lanes per machine word: 0 = auto, 1 = scalar, 2-64 explicit (results are identical at any lane width)")
		csvDir     = fs.String("csv", "", "also write each table as CSV into this directory")
		jsonDir    = fs.String("json", "", "write a machine-readable run manifest into this directory")
		format     = fs.String("format", "text", "table output format: text or md (markdown)")
		list       = fs.Bool("list", false, "list experiments and exit")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut   = fs.String("trace", "", "write an execution trace to this file")
		httpAddr   = fs.String("http", "", "serve expvar and net/http/pprof on this address (e.g. localhost:6060)")
		eventsPath = fs.String("events", "", "write a decision-event trace (aegis.events/v1 JSONL) to this file")
		sample     = fs.Int("sample", 1, "with -events, keep one decision event in every N")
		progressIv = fs.Duration("progress", 0, "stderr progress-line interval (0 = auto: 2s on a terminal, off otherwise; negative = off)")
		shards     = fs.Int("shards", 1, "split each simulation's trial range into this many deterministic shards (results are identical at any shard count)")
		shardWkrs  = fs.Int("shard-workers", 0, "compute this many shards concurrently (0 = NumCPU; results are identical at any worker count)")
		cacheDir   = fs.String("cache-dir", "", "persist each completed shard as an aegis.shard/v1 file in this directory")
		resume     = fs.Bool("resume", false, "load shards already present in -cache-dir instead of recomputing them")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "paper experiments:")
		for _, id := range experiments.IDs {
			fmt.Fprintf(out, "  %s\n", id)
		}
		fmt.Fprintln(out, "ablations:")
		for _, id := range experiments.AblationIDs {
			fmt.Fprintf(out, "  %s\n", id)
		}
		fmt.Fprintln(out, "  all  (every paper experiment)")
		return nil
	}

	var p experiments.Params
	switch *preset {
	case "quick":
		p = experiments.Quick()
	case "default":
		p = experiments.Default()
	case "full":
		p = experiments.Full()
	default:
		return fmt.Errorf("unknown preset %q (quick, default, full)", *preset)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p.Workers = *workers
	if *lanes < 0 || *lanes > 64 {
		return fmt.Errorf("-lanes must be between 0 and 64 (got %d)", *lanes)
	}
	p.Lanes = *lanes
	reg := obs.NewRegistry()
	p.Obs = reg
	prog := obs.NewProgress()
	p.Progress = prog

	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1 (got %d)", *shards)
	}
	if *resume && *cacheDir == "" {
		return fmt.Errorf("-resume requires -cache-dir: there is no cache to resume from")
	}
	if *shardWkrs < 0 {
		return fmt.Errorf("-shard-workers must be non-negative (got %d)", *shardWkrs)
	}
	shardWorkers := *shardWkrs
	if shardWorkers == 0 {
		shardWorkers = runtime.NumCPU()
	}
	eng := &engine.Engine{Shards: *shards, CacheDir: *cacheDir, Resume: *resume, Workers: shardWorkers}
	p.Engine = eng

	var events *obs.EventWriter
	if *eventsPath != "" {
		var err error
		events, err = obs.NewEventWriter(*eventsPath, *sample)
		if err != nil {
			return fmt.Errorf("-events: %w", err)
		}
		p.Trace = events
	}

	if *httpAddr != "" {
		serveDebug(*httpAddr, reg, prog)
	}
	prof, err := startProfiles(*cpuProfile, *memProfile, *traceOut)
	if err != nil {
		return err
	}
	defer func() {
		if err := prof.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "aegisbench:", err)
		}
	}()

	stopProgress := func() {}
	if ivl := progressInterval(*progressIv); ivl > 0 {
		stopProgress = startProgress(prog, ivl)
	}

	if *memProfile != "" {
		// Steady-state heap profiles: an unobserved warm-up run first
		// populates every process-lifetime cache (plane layout ROMs,
		// scheme mask stores), then its heap is snapshotted as the
		// diff base.  Profile the measured run's own allocations with
		//
		//	go tool pprof -diff_base <path>.warmup <path>
		//
		// Without this the profile is dominated by one-time
		// construction.  The warm-up doubles the run's wall time.
		warm := p
		warm.Obs = nil
		warm.Progress = nil
		warm.Trace = nil
		warm.Engine = nil // direct path: a shard cache would turn the measured run into cache reads
		if _, err := experiments.Run(*exp, warm); err != nil {
			return fmt.Errorf("-memprofile warm-up: %w", err)
		}
		base := *memProfile + ".warmup"
		if err := writeHeapProfile(base); err != nil {
			return err
		}
		fmt.Fprintf(out, "memprofile: warm-up done, diff base written to %s\n", base)
	}

	start := time.Now()
	manifest := obs.NewManifest(*exp)
	manifest.Preset = *preset
	manifest.Seed = p.Seed
	manifest.Workers = p.Workers
	manifest.Config = p
	result, err := experiments.Run(*exp, p)
	stopProgress()
	if err != nil {
		if events != nil {
			events.Close()
		}
		return err
	}
	if events != nil {
		if cerr := events.Close(); cerr != nil {
			return fmt.Errorf("-events: %w", cerr)
		}
		fmt.Fprintf(out, "wrote event trace %s (%d events, %d dropped by sampling)\n",
			events.Path(), events.Written(), events.Dropped())
	}
	if *shards > 1 || *cacheDir != "" {
		st := reg.Shards().Totals()
		fmt.Fprintf(out, "shard cache: %d hit(s), %d miss(es), %d shard(s) persisted\n",
			st.CacheHits, st.CacheMisses, st.Persisted)
	}
	for _, tbl := range result.Tables {
		var rerr error
		switch *format {
		case "text":
			rerr = tbl.Render(out)
		case "md":
			rerr = tbl.RenderMarkdown(out)
		default:
			return fmt.Errorf("unknown format %q (text, md)", *format)
		}
		if rerr != nil {
			return rerr
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for i, tbl := range result.Tables {
			name := fmt.Sprintf("%s_%02d.csv", *exp, i)
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				return err
			}
			werr := tbl.WriteCSV(f)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
		}
		written := len(result.Tables)
		if len(result.Series) > 0 {
			name := fmt.Sprintf("%s_series.csv", *exp)
			f, err := os.Create(filepath.Join(*csvDir, name))
			if err != nil {
				return err
			}
			werr := writeSeriesCSV(f, result.Series)
			cerr := f.Close()
			if werr != nil {
				return werr
			}
			if cerr != nil {
				return cerr
			}
			written++
		}
		fmt.Fprintf(out, "wrote %d CSV file(s) to %s\n", written, *csvDir)
	}
	if *jsonDir != "" {
		manifest.Finish(start)
		manifest.Counters = reg.Snapshot()
		manifest.Histograms = reg.HistSnapshot()
		if events != nil {
			manifest.Events = &obs.EventTraceInfo{
				Path:        events.Path(),
				Schema:      obs.EventSchema,
				SampleEvery: events.SampleEvery(),
				Written:     events.Written(),
				Dropped:     events.Dropped(),
			}
		}
		if *shards > 1 || *cacheDir != "" || *lanes != 0 {
			st := reg.Shards().Totals()
			manifest.Sharding = &obs.ShardingInfo{
				ShardSchema: engine.ShardSchema,
				Shards:      *shards,
				Workers:     shardWorkers,
				Lanes:       *lanes,
				CacheDir:    *cacheDir,
				Resume:      *resume,
				CacheHits:   st.CacheHits,
				CacheMisses: st.CacheMisses,
				Persisted:   st.Persisted,
			}
		}
		manifest.Tables = manifestTables(result.Tables)
		manifest.Series = manifestSeries(result.Series)
		path := filepath.Join(*jsonDir, *exp+".json")
		if err := manifest.Write(path); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote run manifest %s\n", path)
	}
	fmt.Fprintf(out, "done in %v (preset %s, seed %d)\n", time.Since(start).Round(time.Millisecond), *preset, p.Seed)
	return nil
}

// manifestTables converts rendered report tables to their JSON form.
func manifestTables(tables []*report.Table) []obs.Table {
	out := make([]obs.Table, 0, len(tables))
	for _, t := range tables {
		out = append(out, obs.Table{
			Title:  t.Title,
			Header: t.Header,
			Rows:   t.Rows,
			Notes:  t.Notes,
		})
	}
	return out
}

// manifestSeries converts figure curves to their JSON form.
func manifestSeries(series []stats.Series) []obs.Series {
	out := make([]obs.Series, 0, len(series))
	for _, s := range series {
		ms := obs.Series{Name: s.Name, Points: make([]obs.Point, 0, len(s.Points))}
		for _, pt := range s.Points {
			ms.Points = append(ms.Points, obs.Point{X: pt.X, Y: pt.Y})
		}
		out = append(out, ms)
	}
	return out
}
