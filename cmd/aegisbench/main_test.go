package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with stdout redirected to a pipe-backed file.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, []string{"-list"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig5", "fig13", "ablation-wear"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %q:\n%s", id, out)
		}
	}
}

func TestTable1RunsInstantly(t *testing.T) {
	out, err := capture(t, []string{"-exp", "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "552") {
		t.Fatalf("table1 output wrong:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := capture(t, []string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownPreset(t *testing.T) {
	if _, err := capture(t, []string{"-preset", "warp"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-exp", "fig2", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote 2 CSV file(s)") {
		t.Fatalf("CSV message missing:\n%s", out)
	}
	files, err := filepath.Glob(filepath.Join(dir, "fig2_*.csv"))
	if err != nil || len(files) != 2 {
		t.Fatalf("CSV files = %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "b\\a") {
		t.Fatalf("CSV content wrong: %s", data)
	}
}

func TestSeedOverride(t *testing.T) {
	// Seeded quick fig10 runs must differ between seeds but repeat
	// within a seed.
	args := func(seed string) []string {
		return []string{"-exp", "fig10", "-preset", "quick", "-seed", seed}
	}
	a1, err := capture(t, args("5"))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := capture(t, args("5"))
	if err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		// Drop the timing line, which legitimately varies.
		lines := strings.Split(s, "\n")
		var keep []string
		for _, l := range lines {
			if strings.HasPrefix(l, "done in") {
				continue
			}
			keep = append(keep, l)
		}
		return strings.Join(keep, "\n")
	}
	if strip(a1) != strip(a2) {
		t.Fatal("same seed produced different output")
	}
	b, err := capture(t, args("6"))
	if err != nil {
		t.Fatal(err)
	}
	if strip(a1) == strip(b) {
		t.Fatal("different seeds produced identical output")
	}
}

func TestSeriesCSVExport(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-exp", "fig10", "-preset", "quick", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote 2 CSV file(s)") {
		t.Fatalf("expected table + series CSVs:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig10_series.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y\n") {
		t.Fatalf("series CSV header wrong: %s", data[:40])
	}
	if !strings.Contains(string(data), "Aegis-rw-p 9x61") {
		t.Fatalf("series CSV missing curves:\n%s", data)
	}
}

func TestExtensionsRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions sweep in -short mode")
	}
	// quick preset over every extension experiment; smoke only.
	out, err := capture(t, []string{"-exp", "extensions", "-preset", "quick"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Write traffic", "Soft vs hard FTC", "PAYG", "wear-leveling techniques"} {
		if !strings.Contains(out, want) {
			t.Fatalf("extensions output missing %q", want)
		}
	}
}

func TestMarkdownFormat(t *testing.T) {
	out, err := capture(t, []string{"-exp", "table1", "-format", "md"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "### Table 1") || !strings.Contains(out, "| hard FTC |") {
		t.Fatalf("markdown output wrong:\n%s", out)
	}
	if _, err := capture(t, []string{"-exp", "table1", "-format", "html"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
