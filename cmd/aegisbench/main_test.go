package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aegis/internal/obs"
)

// capture runs the CLI with stdout redirected to a pipe-backed file.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, []string{"-list"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig5", "fig13", "ablation-wear"} {
		if !strings.Contains(out, id) {
			t.Fatalf("list output missing %q:\n%s", id, out)
		}
	}
}

func TestTable1RunsInstantly(t *testing.T) {
	out, err := capture(t, []string{"-exp", "table1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "552") {
		t.Fatalf("table1 output wrong:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := capture(t, []string{"-exp", "fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestUnknownPreset(t *testing.T) {
	if _, err := capture(t, []string{"-preset", "warp"}); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-exp", "fig2", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote 2 CSV file(s)") {
		t.Fatalf("CSV message missing:\n%s", out)
	}
	files, err := filepath.Glob(filepath.Join(dir, "fig2_*.csv"))
	if err != nil || len(files) != 2 {
		t.Fatalf("CSV files = %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "b\\a") {
		t.Fatalf("CSV content wrong: %s", data)
	}
}

func TestSeedOverride(t *testing.T) {
	// Seeded quick fig10 runs must differ between seeds but repeat
	// within a seed.
	args := func(seed string) []string {
		return []string{"-exp", "fig10", "-preset", "quick", "-seed", seed}
	}
	a1, err := capture(t, args("5"))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := capture(t, args("5"))
	if err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		// Drop the timing line, which legitimately varies.
		lines := strings.Split(s, "\n")
		var keep []string
		for _, l := range lines {
			if strings.HasPrefix(l, "done in") {
				continue
			}
			keep = append(keep, l)
		}
		return strings.Join(keep, "\n")
	}
	if strip(a1) != strip(a2) {
		t.Fatal("same seed produced different output")
	}
	b, err := capture(t, args("6"))
	if err != nil {
		t.Fatal(err)
	}
	if strip(a1) == strip(b) {
		t.Fatal("different seeds produced identical output")
	}
}

func TestSeriesCSVExport(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-exp", "fig10", "-preset", "quick", "-csv", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote 2 CSV file(s)") {
		t.Fatalf("expected table + series CSVs:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig10_series.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,x,y\n") {
		t.Fatalf("series CSV header wrong: %s", data[:40])
	}
	if !strings.Contains(string(data), "Aegis-rw-p 9x61") {
		t.Fatalf("series CSV missing curves:\n%s", data)
	}
}

func TestExtensionsRunner(t *testing.T) {
	if testing.Short() {
		t.Skip("extensions sweep in -short mode")
	}
	// quick preset over every extension experiment; smoke only.
	out, err := capture(t, []string{"-exp", "extensions", "-preset", "quick"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Write traffic", "Soft vs hard FTC", "PAYG", "wear-leveling techniques"} {
		if !strings.Contains(out, want) {
			t.Fatalf("extensions output missing %q", want)
		}
	}
}

// TestJSONManifestGolden pins the manifest schema: key set, schema
// marker, git SHA, seed and result rows must stay stable so downstream
// tooling (cmd/benchdiff, CI artifact consumers) can rely on them.
func TestJSONManifestGolden(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, []string{"-exp", "table1", "-json", dir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote run manifest") {
		t.Fatalf("manifest message missing:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"schema", "experiment", "preset", "seed", "workers",
		"go_version", "goos", "goarch", "num_cpu", "git_sha",
		"started_at", "wall_seconds", "cpu_seconds", "config",
		"counters", "tables",
	} {
		if _, ok := raw[key]; !ok {
			t.Errorf("manifest missing key %q", key)
		}
	}

	m, err := obs.LoadManifest(filepath.Join(dir, "table1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != obs.ManifestSchema {
		t.Fatalf("schema = %q, want %q", m.Schema, obs.ManifestSchema)
	}
	if m.Experiment != "table1" || m.Preset != "default" || m.Seed != 1 {
		t.Fatalf("run identity wrong: %+v", m)
	}
	if m.GitSHA == "" || m.GoVersion == "" {
		t.Fatalf("environment stamps missing: sha=%q go=%q", m.GitSHA, m.GoVersion)
	}
	if len(m.Tables) != 1 || !strings.Contains(m.Tables[0].Title, "Table 1") {
		t.Fatalf("tables wrong: %+v", m.Tables)
	}
	if len(m.Tables[0].Rows) != 10 || m.Tables[0].Rows[9][1] != "101" {
		t.Fatalf("table1 rows wrong: %+v", m.Tables[0].Rows)
	}
	if m.Counters == nil {
		t.Fatal("counters field absent (want at least an empty object)")
	}
}

// TestJSONManifestCounters checks a simulating experiment populates
// per-scheme counter totals in the manifest.
func TestJSONManifestCounters(t *testing.T) {
	dir := t.TempDir()
	if _, err := capture(t, []string{"-exp", "fig10", "-preset", "quick", "-json", dir}); err != nil {
		t.Fatal(err)
	}
	m, err := obs.LoadManifest(filepath.Join(dir, "fig10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Counters) == 0 {
		t.Fatal("fig10 manifest has no counters")
	}
	tot, ok := m.Counters["Aegis-rw 9x61"]
	if !ok {
		t.Fatalf("missing Aegis-rw 9x61 counters; have %v", keys(m.Counters))
	}
	if tot.Writes == 0 || tot.VerifyReads == 0 || tot.BlockDeaths == 0 {
		t.Fatalf("implausible totals %+v", tot)
	}
	if len(m.Series) == 0 {
		t.Fatal("fig10 manifest lost its series")
	}
	if m.WallSeconds <= 0 {
		t.Fatalf("wall_seconds = %v", m.WallSeconds)
	}
}

// TestEventTraceAndManifestValidate runs a quick simulating preset with
// -json and -events and validates both artifacts against their schemas.
// CI runs exactly this combination and uploads the trace, so this test
// is the schema gate for the pipeline.
func TestEventTraceAndManifestValidate(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "fig10.events.jsonl")
	out, err := capture(t, []string{
		"-exp", "fig10", "-preset", "quick",
		"-json", dir, "-events", events, "-sample", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote event trace") {
		t.Fatalf("event-trace message missing:\n%s", out)
	}

	tr, err := obs.ReadEvents(events)
	if err != nil {
		t.Fatalf("event trace does not validate: %v", err)
	}
	if tr.SampleEvery != 2 {
		t.Fatalf("trace header wrong: %+v", tr)
	}
	if len(tr.Events) == 0 {
		t.Fatal("quick fig10 run produced no decision events")
	}
	kinds := map[string]bool{}
	for _, e := range tr.Events {
		kinds[e.Kind] = true
	}
	if !kinds["block_death"] {
		t.Fatalf("trace has no block_death events; kinds = %v", kinds)
	}

	m, err := obs.LoadManifest(filepath.Join(dir, "fig10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != obs.ManifestSchema {
		t.Fatalf("schema = %q, want v2 %q", m.Schema, obs.ManifestSchema)
	}
	if len(m.Histograms) == 0 {
		t.Fatal("v2 manifest has no histograms")
	}
	h, ok := m.Histograms["Aegis-rw 9x61"]
	if !ok || h.Lifetime.Count == 0 {
		t.Fatalf("lifetime histogram missing or empty: %+v", m.Histograms)
	}
	if m.Events == nil {
		t.Fatal("manifest lost the event-trace summary")
	}
	if m.Events.Path != events || m.Events.SampleEvery != 2 {
		t.Fatalf("event summary identity wrong: %+v", m.Events)
	}
	if m.Events.Written != int64(len(tr.Events)) {
		t.Fatalf("manifest says %d events written, trace holds %d", m.Events.Written, len(tr.Events))
	}
	if m.Events.Dropped != tr.Dropped {
		t.Fatalf("dropped mismatch: manifest %d, trailer %d", m.Events.Dropped, tr.Dropped)
	}
}

func keys(m map[string]obs.Totals) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestProfileFlags smoke-tests -cpuprofile/-memprofile/-trace output.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	tr := filepath.Join(dir, "trace.out")
	out, err := capture(t, []string{"-exp", "table1", "-cpuprofile", cpu, "-memprofile", mem, "-trace", tr})
	if err != nil {
		t.Fatal(err)
	}
	// -memprofile runs a warm-up pass and snapshots its heap as the
	// diff base, so the measured profile reflects steady state.
	if !strings.Contains(out, "memprofile: warm-up done") {
		t.Fatalf("output does not mention the warm-up diff base:\n%s", out)
	}
	for _, path := range []string{cpu, mem, mem + ".warmup", tr} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s missing: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestMarkdownFormat(t *testing.T) {
	out, err := capture(t, []string{"-exp", "table1", "-format", "md"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "### Table 1") || !strings.Contains(out, "| hard FTC |") {
		t.Fatalf("markdown output wrong:\n%s", out)
	}
	if _, err := capture(t, []string{"-exp", "table1", "-format", "html"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestDebugMux: the -http surface is the same operational mux aegisd
// mounts — /metrics with bridged scheme counters and bench progress
// gauges, expvar at /debug/vars, pprof, plus the per-binary progress
// JSON.
func TestDebugMux(t *testing.T) {
	reg := obs.NewRegistry()
	sc := reg.Scheme("Aegis 6x11")
	sc.Writes.Add(7)
	sc.BitWrites.Add(41)
	prog := obs.NewProgress()
	prog.SetExperiment("table1")
	prog.AddTotal(10)
	prog.Done(4)

	srv := httptest.NewServer(newDebugMux(reg, prog))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	for _, want := range []string{
		`aegis_scheme_writes_total{scheme="Aegis 6x11"} 7`,
		`aegis_scheme_bit_writes_total{scheme="Aegis 6x11"} 41`,
		"aegis_bench_trials_done 4",
		"aegis_bench_trials_total 10",
		"aegis_build_info{",
		"go_goroutines",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body, _ = get("/debug/aegis/progress")
	if code != http.StatusOK {
		t.Fatalf("/debug/aegis/progress: %d", code)
	}
	var snap obs.ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress JSON: %v\n%s", err, body)
	}
	if snap.Experiment != "table1" || snap.TrialsDone != 4 || snap.TrialsTotal != 10 {
		t.Fatalf("progress snapshot: %+v", snap)
	}

	code, body, _ = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "aegis.counters") {
		t.Fatalf("/debug/vars: %d, aegis.counters present: %v", code, strings.Contains(body, "aegis.counters"))
	}

	if code, _, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}
