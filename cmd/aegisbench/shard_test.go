package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aegis/internal/obs"
)

// stripVolatile drops the lines that legitimately vary between runs
// (timing, cache traffic), leaving the result tables.
func stripVolatile(s string) string {
	var keep []string
	for _, l := range strings.Split(s, "\n") {
		if strings.HasPrefix(l, "done in") || strings.HasPrefix(l, "shard cache:") {
			continue
		}
		keep = append(keep, l)
	}
	return strings.Join(keep, "\n")
}

// TestShardedResumeDeterminism is the ISSUE's acceptance criterion
// exercised through the real CLI path: an unsharded run, a sharded
// cold run, a kill-and-resume run (half the shard files deleted) and a
// fully-cached rerun must all print byte-identical results — and the
// final rerun must report zero misses.
func TestShardedResumeDeterminism(t *testing.T) {
	cache := t.TempDir()
	args := func(extra ...string) []string {
		return append([]string{"-exp", "fig9", "-preset", "quick"}, extra...)
	}

	ref, err := capture(t, args())
	if err != nil {
		t.Fatal(err)
	}

	cold, err := capture(t, args("-shards", "4", "-cache-dir", cache))
	if err != nil {
		t.Fatal(err)
	}
	if stripVolatile(cold) != stripVolatile(ref) {
		t.Fatal("sharded run diverged from unsharded run")
	}
	if !strings.Contains(cold, "shard cache:") {
		t.Fatalf("cold run printed no cache summary:\n%s", cold)
	}

	// Simulate a killed run: delete half the persisted shards, then
	// resume.  The engine must recompute exactly the deleted ones.
	files, err := filepath.Glob(filepath.Join(cache, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shards persisted: %v (%v)", files, err)
	}
	deleted := 0
	for i, f := range files {
		if i%2 == 0 {
			if err := os.Remove(f); err != nil {
				t.Fatal(err)
			}
			deleted++
		}
	}

	resumed, err := capture(t, args("-shards", "4", "-cache-dir", cache, "-resume"))
	if err != nil {
		t.Fatal(err)
	}
	if stripVolatile(resumed) != stripVolatile(ref) {
		t.Fatal("kill-and-resume run diverged from unsharded run")
	}

	// Unchanged rerun: every shard comes from the cache.
	warm, err := capture(t, args("-shards", "4", "-cache-dir", cache, "-resume"))
	if err != nil {
		t.Fatal(err)
	}
	if stripVolatile(warm) != stripVolatile(ref) {
		t.Fatal("fully-cached rerun diverged from unsharded run")
	}
	if !strings.Contains(warm, " 0 miss(es)") {
		t.Fatalf("unchanged rerun was not 100%% cache hits:\n%s", warm)
	}
	if strings.Contains(warm, "shard cache: 0 hit(s)") {
		t.Fatalf("unchanged rerun reported no hits:\n%s", warm)
	}
}

// TestShardingManifestRecord checks the run manifest records shard
// provenance when, and only when, the engine is enabled.
func TestShardingManifestRecord(t *testing.T) {
	cache := t.TempDir()
	jsonDir := t.TempDir()
	if _, err := capture(t, []string{
		"-exp", "fig9", "-preset", "quick",
		"-shards", "3", "-cache-dir", cache, "-json", jsonDir,
	}); err != nil {
		t.Fatal(err)
	}
	m, err := obs.LoadManifest(filepath.Join(jsonDir, "fig9.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Sharding == nil {
		t.Fatal("sharded run manifest has no sharding block")
	}
	if m.Sharding.ShardSchema != "aegis.shard/v1" || m.Sharding.Shards != 3 || m.Sharding.CacheDir != cache {
		t.Fatalf("sharding identity wrong: %+v", m.Sharding)
	}
	if m.Sharding.CacheMisses == 0 || m.Sharding.Persisted == 0 {
		t.Fatalf("cold-run traffic wrong: %+v", m.Sharding)
	}

	plainDir := t.TempDir()
	if _, err := capture(t, []string{"-exp", "table1", "-json", plainDir}); err != nil {
		t.Fatal(err)
	}
	m2, err := obs.LoadManifest(filepath.Join(plainDir, "table1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if m2.Sharding != nil {
		t.Fatalf("unsharded run recorded sharding: %+v", m2.Sharding)
	}
}

func TestShardFlagValidation(t *testing.T) {
	if _, err := capture(t, []string{"-exp", "table1", "-resume"}); err == nil ||
		!strings.Contains(err.Error(), "-cache-dir") {
		t.Fatalf("-resume without -cache-dir accepted: %v", err)
	}
	if _, err := capture(t, []string{"-exp", "table1", "-shards", "0"}); err == nil ||
		!strings.Contains(err.Error(), "-shards") {
		t.Fatalf("-shards 0 accepted: %v", err)
	}
}
