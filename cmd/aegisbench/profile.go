package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sync"
	"sync/atomic"

	// Opt-in diagnostics endpoint: importing net/http/pprof and expvar
	// registers /debug/pprof/* and /debug/vars on the default mux; the
	// server only starts when -http is given.
	_ "net/http/pprof"

	"aegis/internal/obs"
)

// profiler owns the lifecycle of the -cpuprofile/-memprofile/-trace
// outputs for one harness run.
type profiler struct {
	cpuFile   *os.File
	traceFile *os.File
	memPath   string
}

// startProfiles begins CPU profiling and execution tracing as requested.
// Call stop (even on error paths) to flush everything.
func startProfiles(cpuPath, memPath, tracePath string) (*profiler, error) {
	p := &profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			p.stopCPU()
			return nil, fmt.Errorf("-trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.stopCPU()
			return nil, fmt.Errorf("-trace: %w", err)
		}
		p.traceFile = f
	}
	return p, nil
}

func (p *profiler) stopCPU() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

// stop flushes the CPU profile and trace and writes the heap profile.
func (p *profiler) stop() error {
	p.stopCPU()
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil {
			return err
		}
		p.traceFile = nil
	}
	if p.memPath != "" {
		return writeHeapProfile(p.memPath)
	}
	return nil
}

// writeHeapProfile forces a GC and snapshots the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	runtime.GC() // get up-to-date heap statistics
	werr := pprof.Lookup("heap").WriteTo(f, 0)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("-memprofile: %w", werr)
	}
	return cerr
}

// publishCountersOnce exposes the run's scheme counters as the expvar
// variable "aegis.counters" (visible under /debug/vars).  expvar.Publish
// panics on duplicate names, so guard against repeated runs in-process.
var publishOnce sync.Once

func publishCounters(reg *obs.Registry) {
	publishOnce.Do(func() {
		expvar.Publish("aegis.counters", expvar.Func(func() any {
			return reg.Snapshot()
		}))
	})
}

// debugProgress holds the progress tracker the /debug/aegis/progress
// handler reads.  A pointer swap (rather than capturing one tracker in
// the handler closure) keeps repeated in-process runs serving the
// current run's progress — handlers on the default mux cannot be
// re-registered.
var (
	debugProgress    atomic.Pointer[obs.Progress]
	progressHTTPOnce sync.Once
)

func publishProgress(p *obs.Progress) {
	debugProgress.Store(p)
	progressHTTPOnce.Do(func() {
		http.HandleFunc("/debug/aegis/progress", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(debugProgress.Load().Snapshot())
		})
	})
}

// serveDebug starts the opt-in expvar/pprof HTTP endpoint.  Next to
// /debug/vars and /debug/pprof/* it serves /debug/aegis/progress, the
// JSON form of the live progress line.  Profiling long runs:
// `aegisbench -exp all -preset full -http localhost:6060`, then
// `go tool pprof http://localhost:6060/debug/pprof/profile`.
func serveDebug(addr string, reg *obs.Registry, prog *obs.Progress) {
	publishCounters(reg)
	publishProgress(prog)
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "aegisbench: -http:", err)
		}
	}()
}
