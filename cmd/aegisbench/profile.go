package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sync"
	"sync/atomic"

	"aegis/internal/obs"
)

// profiler owns the lifecycle of the -cpuprofile/-memprofile/-trace
// outputs for one harness run.
type profiler struct {
	cpuFile   *os.File
	traceFile *os.File
	memPath   string
}

// startProfiles begins CPU profiling and execution tracing as requested.
// Call stop (even on error paths) to flush everything.
func startProfiles(cpuPath, memPath, tracePath string) (*profiler, error) {
	p := &profiler{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			p.stopCPU()
			return nil, fmt.Errorf("-trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.stopCPU()
			return nil, fmt.Errorf("-trace: %w", err)
		}
		p.traceFile = f
	}
	return p, nil
}

func (p *profiler) stopCPU() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		p.cpuFile.Close()
		p.cpuFile = nil
	}
}

// stop flushes the CPU profile and trace and writes the heap profile.
func (p *profiler) stop() error {
	p.stopCPU()
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil {
			return err
		}
		p.traceFile = nil
	}
	if p.memPath != "" {
		return writeHeapProfile(p.memPath)
	}
	return nil
}

// writeHeapProfile forces a GC and snapshots the heap profile to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	runtime.GC() // get up-to-date heap statistics
	werr := pprof.Lookup("heap").WriteTo(f, 0)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("-memprofile: %w", werr)
	}
	return cerr
}

// debugRegistry and debugProgress hold the observables the -http
// endpoint serves.  Pointer swaps (rather than capturing one run's
// registry or tracker in a handler closure) keep repeated in-process
// runs serving the current run's state.
var (
	debugRegistry atomic.Pointer[obs.Registry]
	debugProgress atomic.Pointer[obs.Progress]
	publishOnce   sync.Once
)

// publishCounters exposes the run's scheme counters as the expvar
// variable "aegis.counters" (visible under /debug/vars).  expvar.Publish
// panics on duplicate names, so guard against repeated runs in-process.
func publishCounters(reg *obs.Registry) {
	debugRegistry.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("aegis.counters", expvar.Func(func() any {
			return debugRegistry.Load().Snapshot()
		}))
	})
}

// progressHandler serves the JSON form of the live progress line.
func progressHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(debugProgress.Load().Snapshot())
	})
}

// newDebugMetrics builds the harness's explicit metric families: the
// run's live progress as scrape-time gauges, served next to the bridged
// per-scheme and shard-cache families of the registry.
func newDebugMetrics() *obs.Metrics {
	m := obs.NewMetrics()
	m.GaugeFunc("aegis_bench_trials_done", "Monte Carlo trials the current run has completed.",
		func() float64 { return float64(debugProgress.Load().Snapshot().TrialsDone) })
	m.GaugeFunc("aegis_bench_trials_total", "Monte Carlo trials the current run has registered.",
		func() float64 { return float64(debugProgress.Load().Snapshot().TrialsTotal) })
	m.GaugeFunc("aegis_bench_trials_per_second", "Average trial completion rate of the current run.",
		func() float64 { return debugProgress.Load().Snapshot().TrialsPerSec })
	return m
}

// newDebugMux builds the -http surface: the shared operational endpoints
// of obs.RegisterDebug — GET /metrics (Prometheus text exposition),
// /debug/pprof/* and /debug/vars, the identical surface aegisd mounts —
// plus the per-binary /debug/aegis/progress.
func newDebugMux(reg *obs.Registry, prog *obs.Progress) *http.ServeMux {
	publishCounters(reg)
	debugProgress.Store(prog)
	mux := http.NewServeMux()
	obs.RegisterDebug(mux, newDebugMetrics(), func() *obs.Registry { return debugRegistry.Load() }, nil)
	mux.Handle("GET /debug/aegis/progress", progressHandler())
	return mux
}

// serveDebug starts the opt-in diagnostics endpoint.  Profiling long
// runs: `aegisbench -exp all -preset full -http localhost:6060`, then
// `go tool pprof http://localhost:6060/debug/pprof/profile`; scrape
// progress with `curl localhost:6060/metrics`.
func serveDebug(addr string, reg *obs.Registry, prog *obs.Progress) {
	mux := newDebugMux(reg, prog)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			fmt.Fprintln(os.Stderr, "aegisbench: -http:", err)
		}
	}()
}
