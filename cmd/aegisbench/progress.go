package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"aegis/internal/obs"
)

// progressInterval resolves the -progress flag: an explicit positive
// interval wins, 0 means auto (render every 2 s when stderr is a
// terminal, stay quiet when it is redirected — CI logs and test output
// shouldn't fill with carriage returns), negative disables.
func progressInterval(flagValue time.Duration) time.Duration {
	if flagValue != 0 {
		if flagValue < 0 {
			return 0
		}
		return flagValue
	}
	if stderrIsTerminal() {
		return 2 * time.Second
	}
	return 0
}

// stderrIsTerminal reports whether stderr is attached to a character
// device (a terminal rather than a pipe or file).
func stderrIsTerminal() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// startProgress renders a live progress line on stderr every interval,
// overwriting itself in place.  The returned stop function halts the
// ticker and prints the final state on its own line.
func startProgress(p *obs.Progress, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintf(os.Stderr, "\r\x1b[K%s", p.Snapshot())
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
		fmt.Fprintf(os.Stderr, "\r\x1b[K%s\n", p.Snapshot())
	}
}
