package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aegis/internal/serve"
)

// daemon boots a real in-process aegisd for the generator to hit.
func daemon(t *testing.T) string {
	t.Helper()
	s, err := serve.New(serve.Options{Workers: 2, QueueDepth: 64, CacheDir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			s.Close()
		}
	})
	return ts.URL
}

// TestLoadRunAndGate: a small load run completes every job, produces a
// well-formed aegis.load/v1 report, and passes the leak gate.
func TestLoadRunAndGate(t *testing.T) {
	base := daemon(t)
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-addr", base,
		"-jobs", "16", "-concurrency", "4", "-tenants", "2", "-spec-variety", "4",
		"-max-p99", "60", "-max-goroutine-delta", "16", "-max-fd-delta", "16",
		"-settle", "5s",
		"-report", reportPath,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, data)
	}
	if rep.Schema != LoadSchema {
		t.Fatalf("schema %q", rep.Schema)
	}
	if rep.Jobs.Submitted != 16 {
		t.Fatalf("submitted %d of 16 (errors %v)", rep.Jobs.Submitted, rep.Errors)
	}
	// 16 jobs over 4 seeds and 2 tenants: 8 distinct (tenant, spec)
	// pairs; every repeat is either a dedup hit or a fresh run of an
	// already-finished spec, and all must finish done.
	if rep.Jobs.Done+rep.Jobs.Deduplicated < 16 || rep.Jobs.Failed != 0 || rep.Jobs.Aborted != 0 {
		t.Fatalf("jobs: %+v", rep.Jobs)
	}
	if len(rep.Errors) != 0 {
		t.Fatalf("error classes: %v", rep.Errors)
	}
	if rep.ThroughputJobsPerSec <= 0 || rep.Complete.P99 <= 0 || rep.Complete.Max < rep.Complete.P50 {
		t.Fatalf("latency summary implausible: %+v throughput %v", rep.Complete, rep.ThroughputJobsPerSec)
	}
	if !rep.Gate.Pass || len(rep.Gate.Violations) != 0 {
		t.Fatalf("gate: %+v", rep.Gate)
	}
	if rep.Daemon.GoroutinesBefore <= 0 {
		t.Fatalf("no baseline goroutine gauge: %+v", rep.Daemon)
	}
}

// TestLoadGateFails: an unreachable threshold trips the gate — run
// errors and the report says why.
func TestLoadGateFails(t *testing.T) {
	base := daemon(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{
		"-addr", base,
		"-jobs", "2", "-concurrency", "2",
		"-max-p99", "0.000000001",
		"-settle", "1s",
	}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "gate failed") {
		t.Fatalf("gate breach not surfaced: %v", err)
	}
	var rep Report
	if jsonErr := json.Unmarshal(stdout.Bytes(), &rep); jsonErr != nil {
		t.Fatalf("no report on gate failure: %v\n%s", jsonErr, stdout.String())
	}
	if rep.Gate.Pass || len(rep.Gate.Violations) == 0 {
		t.Fatalf("gate: %+v", rep.Gate)
	}
}

func TestFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{}, &stdout, &stderr); err == nil {
		t.Fatal("missing -addr accepted")
	}
	if err := run([]string{"-addr", "http://x", "-jobs", "0"}, &stdout, &stderr); err == nil {
		t.Fatal("-jobs 0 accepted")
	}
}

func TestSummarize(t *testing.T) {
	if got := summarize(nil); got != (Latency{}) {
		t.Fatalf("empty summary: %+v", got)
	}
	lats := make([]float64, 100)
	for i := range lats {
		lats[i] = float64(i + 1) // 1..100
	}
	got := summarize(lats)
	if got.P50 != 51 || got.P99 != 100 || got.Max != 100 {
		t.Fatalf("percentiles: %+v", got)
	}
}
