// Command aegisload is the load generator and leak gate for aegisd.
// It drives a running daemon with a configurable mix of concurrent
// submissions — several tenants, duplicate and fresh specs — waits for
// every job to finish, and emits a machine-readable report (schema
// aegis.load/v1): throughput, submit and completion latency
// percentiles, an error-class breakdown, and the daemon's goroutine and
// file-descriptor deltas scraped from /metrics before and after the
// run.
//
// With gate thresholds set it exits non-zero when the run breaches
// them, which is how CI uses it (make load-gate):
//
//	aegisload -addr http://127.0.0.1:8080 \
//	    -jobs 120 -concurrency 8 -tenants 3 \
//	    -max-p99 30 -max-goroutine-delta 8 -max-fd-delta 8 \
//	    -report load-report.json
//
// A leak shows up as a delta: every served connection, SSE stream and
// job the daemon handles must release its goroutines and descriptors
// once the load stops, so after an idle settle the gauges must return
// to within the threshold of their pre-load values.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aegis/pkg/client"
)

// LoadSchema identifies the report format; bump on incompatible change.
const LoadSchema = "aegis.load/v1"

// Report is the aegis.load/v1 document.
type Report struct {
	Schema  string         `json:"schema"`
	Target  string         `json:"target"`
	Config  RunConfig      `json:"config"`
	Elapsed float64        `json:"elapsed_seconds"`
	Jobs    JobCounts      `json:"jobs"`
	Errors  map[string]int `json:"errors"`
	// ThroughputJobsPerSec counts completed jobs over the load phase.
	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	Submit               Latency `json:"submit_latency"`
	Complete             Latency `json:"complete_latency"`
	Daemon               Deltas  `json:"daemon"`
	Gate                 Gate    `json:"gate"`
}

type RunConfig struct {
	Jobs        int `json:"jobs"`
	Concurrency int `json:"concurrency"`
	Tenants     int `json:"tenants"`
	SpecVariety int `json:"spec_variety"`
	Trials      int `json:"trials"`
	// ClusterWorkers is the size of the spawned worker fleet when the
	// run drove a -cluster topology (0 = single daemon).
	ClusterWorkers int `json:"cluster_workers,omitempty"`
}

type JobCounts struct {
	Submitted int `json:"submitted"`
	// Deduplicated counts submissions answered 409: the client waited
	// on the already-live identical job.
	Deduplicated int `json:"deduplicated"`
	Done         int `json:"done"`
	Failed       int `json:"failed"`
	Aborted      int `json:"aborted"`
}

// Latency summarizes a latency distribution in seconds.
type Latency struct {
	P50 float64 `json:"p50_seconds"`
	P95 float64 `json:"p95_seconds"`
	P99 float64 `json:"p99_seconds"`
	Max float64 `json:"max_seconds"`
}

// Deltas is the daemon-side leak check: gauges scraped from /metrics
// before the load and after an idle settle.
type Deltas struct {
	GoroutinesBefore float64 `json:"goroutines_before"`
	GoroutinesAfter  float64 `json:"goroutines_after"`
	GoroutineDelta   float64 `json:"goroutine_delta"`
	OpenFDsBefore    float64 `json:"open_fds_before"`
	OpenFDsAfter     float64 `json:"open_fds_after"`
	FDDelta          float64 `json:"fd_delta"`
}

// Gate records the thresholds the run was held to and the verdict.
type Gate struct {
	MaxP99Seconds     float64  `json:"max_p99_seconds,omitempty"`
	MaxGoroutineDelta int      `json:"max_goroutine_delta,omitempty"`
	MaxFDDelta        int      `json:"max_fd_delta,omitempty"`
	Violations        []string `json:"violations,omitempty"`
	Pass              bool     `json:"pass"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "aegisload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aegisload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", "", "aegisd base URL, e.g. http://127.0.0.1:8080 (required)")
		jobs    = fs.Int("jobs", 60, "total submissions to issue")
		conc    = fs.Int("concurrency", 8, "concurrent submitters")
		tenants = fs.Int("tenants", 2, "distinct tenants (load-0..load-N-1) to spread submissions over")
		variety = fs.Int("spec-variety", 0, "distinct job specs (0 = jobs/2, so specs repeat and exercise dedup + cache)")
		trials  = fs.Int("trials", 2, "Monte Carlo trials per job (small: load tests the service, not the simulator)")
		timeout = fs.Duration("timeout", 5*time.Minute, "overall run deadline")
		settle  = fs.Duration("settle", 10*time.Second, "max wait for daemon gauges to return to baseline")
		maxP99  = fs.Float64("max-p99", 0, "gate: fail if completion p99 exceeds this many seconds (0 = no gate)")
		maxG    = fs.Int("max-goroutine-delta", -1, "gate: fail if daemon goroutines grew by more (negative = no gate)")
		maxFD   = fs.Int("max-fd-delta", -1, "gate: fail if daemon open FDs grew by more (negative = no gate)")
		outPath = fs.String("report", "-", "write the aegis.load/v1 report here (- = stdout)")
		nWork   = fs.Int("cluster", 0, "spawn a coordinator + N worker fleet to drive instead of -addr (requires -aegisd-bin)")
		binPath = fs.String("aegisd-bin", "", "aegisd binary for -cluster topologies")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nWork < 0 {
		return fmt.Errorf("-cluster must be non-negative")
	}
	if *nWork == 0 && *addr == "" {
		return fmt.Errorf("-addr is required (or -cluster N -aegisd-bin ./aegisd to spawn a fleet)")
	}
	if *nWork > 0 && *addr != "" {
		return fmt.Errorf("-addr and -cluster are mutually exclusive: the fleet's coordinator is the target")
	}
	if *nWork > 0 && *binPath == "" {
		return fmt.Errorf("-cluster requires -aegisd-bin")
	}
	if *jobs < 1 || *conc < 1 || *tenants < 1 {
		return fmt.Errorf("-jobs, -concurrency and -tenants must be positive")
	}
	if *variety <= 0 {
		*variety = (*jobs + 1) / 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *nWork > 0 {
		dir, err := os.MkdirTemp("", "aegisload-cluster-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fmt.Fprintf(stderr, "aegisload: launching fleet: coordinator + %d workers\n", *nWork)
		fl, err := launchFleet(ctx, *binPath, dir, *nWork, stderr)
		if err != nil {
			return fmt.Errorf("launch fleet: %w", err)
		}
		defer fl.stop()
		*addr = fl.coordURL
		fmt.Fprintf(stderr, "aegisload: fleet ready at %s\n", fl.coordURL)
	}

	// A dedicated transport so the load's keep-alive connections can be
	// closed before the leak check — otherwise idle pool connections
	// hold daemon goroutines and read as leaks.
	transport := &http.Transport{MaxIdleConnsPerHost: *conc}
	httpc := &http.Client{Transport: transport}
	defer transport.CloseIdleConnections()

	clients := make([]*client.Client, *tenants)
	for i := range clients {
		c, err := client.New(*addr, client.Options{
			Tenant:       fmt.Sprintf("load-%d", i),
			HTTPClient:   httpc,
			PollInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		clients[i] = c
	}
	if _, err := clients[0].Version(ctx); err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}

	before, err := scrapeGauges(ctx, httpc, *addr)
	if err != nil {
		return fmt.Errorf("baseline metrics scrape: %w", err)
	}

	rep := &Report{
		Schema: LoadSchema,
		Target: *addr,
		Config: RunConfig{Jobs: *jobs, Concurrency: *conc, Tenants: *tenants, SpecVariety: *variety, Trials: *trials, ClusterWorkers: *nWork},
		Errors: map[string]int{},
	}
	var (
		mu         sync.Mutex
		submitLats []float64
		finishLats []float64
	)
	record := func(f func()) { mu.Lock(); defer mu.Unlock(); f() }

	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				cl := clients[idx%*tenants]
				spec := client.JobSpec{
					Kind:      "blocks",
					Scheme:    "aegis:11",
					BlockBits: 64,
					Trials:    *trials,
					// Seeds repeat across the variety window: repeated
					// specs within a tenant dedup, across tenants they
					// are distinct jobs sharing cached shards.
					Seed: int64(1000 + idx%*variety),
				}
				t0 := time.Now()
				st, err := cl.Submit(ctx, spec)
				id := ""
				if err != nil {
					if apiErr, ok := errAs(err); ok && apiErr.IsDuplicate() {
						id = apiErr.JobID
						record(func() { rep.Jobs.Deduplicated++ })
					} else {
						record(func() { rep.Errors[errClass(err)]++ })
						continue
					}
				} else {
					id = st.ID
				}
				record(func() {
					rep.Jobs.Submitted++
					submitLats = append(submitLats, time.Since(t0).Seconds())
				})
				final, err := cl.Wait(ctx, id)
				if err != nil {
					record(func() { rep.Errors[errClass(err)]++ })
					continue
				}
				record(func() {
					finishLats = append(finishLats, time.Since(t0).Seconds())
					switch final.State {
					case client.StateDone:
						rep.Jobs.Done++
					case client.StateFailed:
						rep.Jobs.Failed++
					case client.StateAborted:
						rep.Jobs.Aborted++
					}
				})
			}
		}()
	}
	for i := 0; i < *jobs; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	rep.Elapsed = time.Since(start).Seconds()
	if rep.Elapsed > 0 {
		rep.ThroughputJobsPerSec = float64(rep.Jobs.Done) / rep.Elapsed
	}
	rep.Submit = summarize(submitLats)
	rep.Complete = summarize(finishLats)

	// Leak check: drop our idle connections, then give the daemon until
	// -settle for its per-connection goroutines and FDs to unwind.
	transport.CloseIdleConnections()
	after := settleGauges(ctx, httpc, *addr, before, *settle, *maxG, *maxFD)
	rep.Daemon = Deltas{
		GoroutinesBefore: before["go_goroutines"],
		GoroutinesAfter:  after["go_goroutines"],
		GoroutineDelta:   after["go_goroutines"] - before["go_goroutines"],
		OpenFDsBefore:    before["aegis_open_fds"],
		OpenFDsAfter:     after["aegis_open_fds"],
		FDDelta:          after["aegis_open_fds"] - before["aegis_open_fds"],
	}

	rep.Gate = Gate{MaxP99Seconds: *maxP99, MaxGoroutineDelta: *maxG, MaxFDDelta: *maxFD, Pass: true}
	fail := func(format string, args ...any) {
		rep.Gate.Violations = append(rep.Gate.Violations, fmt.Sprintf(format, args...))
		rep.Gate.Pass = false
	}
	if *maxP99 > 0 && rep.Complete.P99 > *maxP99 {
		fail("completion p99 %.3fs exceeds %.3fs", rep.Complete.P99, *maxP99)
	}
	if *maxG >= 0 && rep.Daemon.GoroutineDelta > float64(*maxG) {
		fail("goroutine delta %+.0f exceeds %d", rep.Daemon.GoroutineDelta, *maxG)
	}
	if *maxFD >= 0 && rep.Daemon.FDDelta > float64(*maxFD) {
		fail("fd delta %+.0f exceeds %d", rep.Daemon.FDDelta, *maxFD)
	}
	if rep.Jobs.Done == 0 {
		fail("no job completed (submitted %d, errors %v)", rep.Jobs.Submitted, rep.Errors)
	}

	out := stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if !rep.Gate.Pass {
		return fmt.Errorf("gate failed: %s", strings.Join(rep.Gate.Violations, "; "))
	}
	return nil
}

func errAs(err error) (*client.APIError, bool) {
	var apiErr *client.APIError
	ok := errors.As(err, &apiErr)
	return apiErr, ok
}

// errClass buckets an error for the report: the HTTP status for API
// errors, "transport" for everything else.
func errClass(err error) string {
	if apiErr, ok := errAs(err); ok {
		return strconv.Itoa(apiErr.StatusCode)
	}
	return "transport"
}

// summarize computes latency percentiles (nearest-rank) in seconds.
func summarize(lats []float64) Latency {
	if len(lats) == 0 {
		return Latency{}
	}
	sort.Float64s(lats)
	q := func(p float64) float64 {
		i := int(p * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return Latency{P50: q(0.50), P95: q(0.95), P99: q(0.99), Max: lats[len(lats)-1]}
}

// scrapeGauges fetches /metrics and extracts the leak-check gauges.
func scrapeGauges(ctx context.Context, httpc *http.Client, base string) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(base, "/")+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %d", resp.StatusCode)
	}
	gauges := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		for _, name := range []string{"go_goroutines", "aegis_open_fds"} {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
					gauges[name] = v
				}
			}
		}
	}
	return gauges, sc.Err()
}

// settleGauges polls /metrics until the gauges are back within the gate
// thresholds of the baseline or the settle budget runs out, returning
// the last scrape.  Leaked resources never unwind, so waiting longer
// than the settle period cannot mask a real leak — it only filters the
// transient teardown of the load's own connections.
func settleGauges(ctx context.Context, httpc *http.Client, base string, before map[string]float64, budget time.Duration, maxG, maxFD int) map[string]float64 {
	deadline := time.Now().Add(budget)
	var last map[string]float64
	for {
		gauges, err := scrapeGauges(ctx, httpc, base)
		if err == nil {
			last = gauges
			okG := maxG < 0 || gauges["go_goroutines"]-before["go_goroutines"] <= float64(maxG)
			okFD := maxFD < 0 || gauges["aegis_open_fds"]-before["aegis_open_fds"] <= float64(maxFD)
			if okG && okFD {
				return last
			}
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return last
		}
		time.Sleep(100 * time.Millisecond)
	}
}
