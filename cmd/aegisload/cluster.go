package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

// Cluster topology mode (-cluster N -aegisd-bin ./aegisd): instead of
// targeting a daemon the caller started, aegisload launches its own
// fleet — one coordinator plus N worker processes of the given aegisd
// binary, each on a free port with its own cache directory — drives the
// load at the coordinator, and tears the fleet down afterwards.  This
// is what make cluster-gate runs in CI: the same duplicate/fresh spec
// mix as the single-daemon gate, but answered by leased shard fan-out.

// fleet is a spawned coordinator + workers topology.
type fleet struct {
	coordURL string
	procs    []*exec.Cmd
	stderr   io.Writer
}

// launchFleet starts a coordinator and n workers and waits until every
// worker is registered.  The caller owns dir (addr files + caches).
func launchFleet(ctx context.Context, bin, dir string, n int, stderr io.Writer) (*fleet, error) {
	f := &fleet{stderr: stderr}
	start := func(name string, args ...string) error {
		cmd := exec.Command(bin, args...)
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start %s: %w", name, err)
		}
		f.procs = append(f.procs, cmd)
		return nil
	}

	coordAddrFile := filepath.Join(dir, "coordinator.addr")
	if err := start("coordinator",
		"-role", "coordinator",
		"-addr", "127.0.0.1:0",
		"-addr-file", coordAddrFile,
		"-cache-dir", filepath.Join(dir, "cache-coordinator"),
		"-heartbeat-ttl", "2s",
		"-worker-wait", "30s",
		"-log-level", "warn",
	); err != nil {
		f.stop()
		return nil, err
	}
	coordAddr, err := awaitAddrFile(ctx, coordAddrFile)
	if err != nil {
		f.stop()
		return nil, fmt.Errorf("coordinator did not come up: %w", err)
	}
	f.coordURL = "http://" + coordAddr

	for i := 0; i < n; i++ {
		if err := start(fmt.Sprintf("worker-%d", i),
			"-role", "worker",
			"-coordinator", f.coordURL,
			"-addr", "127.0.0.1:0",
			"-worker-name", fmt.Sprintf("load-worker-%d", i),
			"-cache-dir", filepath.Join(dir, fmt.Sprintf("cache-worker-%d", i)),
			"-log-level", "warn",
		); err != nil {
			f.stop()
			return nil, err
		}
	}
	if err := f.awaitWorkers(ctx, n); err != nil {
		f.stop()
		return nil, err
	}
	return f, nil
}

// awaitAddrFile polls for the -addr-file a spawned daemon writes once
// it is listening.
func awaitAddrFile(ctx context.Context, path string) (string, error) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(path); err == nil {
			if addr := strings.TrimSpace(string(data)); addr != "" {
				return addr, nil
			}
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("no address in %s after 15s", path)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// awaitWorkers polls the coordinator's fleet listing until n workers
// are registered.
func (f *fleet) awaitWorkers(ctx context.Context, n int) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.coordURL+"/v1/workers", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && strings.Count(string(body), `"name"`) >= n {
				return nil
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet incomplete: %d workers not registered within 30s", n)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// stop tears the fleet down: SIGTERM everyone, wait briefly, SIGKILL
// stragglers.  Workers first so the coordinator does not log a storm of
// lost-worker warnings during its own shutdown.
func (f *fleet) stop() {
	for i := len(f.procs) - 1; i >= 0; i-- {
		if p := f.procs[i].Process; p != nil {
			p.Signal(syscall.SIGTERM) //nolint:errcheck
		}
	}
	done := make(chan struct{})
	go func() {
		for _, cmd := range f.procs {
			cmd.Wait() //nolint:errcheck
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		for _, cmd := range f.procs {
			if p := cmd.Process; p != nil {
				p.Kill() //nolint:errcheck
			}
		}
		<-done
	}
}
