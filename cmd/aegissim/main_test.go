package main

import (
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestList(t *testing.T) {
	out, err := capture(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"aegis-9x61", "zipf", "security-refresh"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list missing %q:\n%s", want, out)
		}
	}
}

func TestRunSmallDevice(t *testing.T) {
	out, err := capture(t,
		"-scheme", "aegis-23x23", "-workload", "uniform", "-leveler", "none",
		"-pages", "8", "-pagebytes", "512", "-meanlife", "250", "-stop", "0.5", "-seed", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Aegis 23x23") {
		t.Fatalf("scheme name missing:\n%s", out)
	}
	if !strings.Contains(out, "totals:") {
		t.Fatalf("totals missing:\n%s", out)
	}
	if !strings.Contains(out, "100%") {
		t.Fatalf("initial capacity missing:\n%s", out)
	}
}

func TestSchemeSpecs(t *testing.T) {
	for _, spec := range []string{"aegis-9x61", "aegis-61", "aegis-rw-9x61", "safer-32", "ecp-4", "rdis-3", "hamming"} {
		if _, err := parseScheme(spec, 512); err != nil {
			t.Errorf("parseScheme(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"", "aegis-", "aegis-24", "safer-x", "ecp-", "unknown"} {
		if _, err := parseScheme(spec, 512); err == nil {
			t.Errorf("parseScheme(%q) accepted", spec)
		}
	}
}

func TestWorkloadAndLevelerSpecs(t *testing.T) {
	for _, spec := range []string{"uniform", "sequential", "zipf", "hotspot"} {
		if _, err := parseWorkload(spec, 16, 1); err != nil {
			t.Errorf("parseWorkload(%q): %v", spec, err)
		}
	}
	if _, err := parseWorkload("bogus", 16, 1); err == nil {
		t.Error("bogus workload accepted")
	}
	for _, spec := range []string{"none", "start-gap", "start-gap-rand", "security-refresh", "perfect"} {
		if _, err := parseLeveler(spec, 16, 8, 1); err != nil {
			t.Errorf("parseLeveler(%q): %v", spec, err)
		}
	}
	if _, err := parseLeveler("bogus", 16, 8, 1); err == nil {
		t.Error("bogus leveler accepted")
	}
}

func TestBadGeometryFails(t *testing.T) {
	if _, err := capture(t, "-pages", "0"); err == nil {
		t.Fatal("zero pages accepted")
	}
	// security-refresh needs power-of-two pages.
	if _, err := capture(t, "-leveler", "security-refresh", "-pages", "12"); err == nil {
		t.Fatal("non-power-of-two pages with security-refresh accepted")
	}
}
