// Command aegissim runs the end-to-end PCM device simulation: a workload
// address stream flows through a wear leveler onto pages of
// scheme-protected data blocks, while the OS retires failed pages and
// (optionally) pairs compatible ones.  It prints a capacity-decay trace
// and the final counters.
//
// Usage:
//
//	aegissim -scheme aegis-9x61 -workload zipf -leveler start-gap-rand
//	aegissim -scheme safer-64 -workload hotspot -pairing=false
//	aegissim -list
//
// Schemes: aegis-BxB (e.g. aegis-23x23), aegis-rw-BxB, safer-N, ecp-N,
// rdis-3, hamming.  Workloads: uniform, sequential, zipf, hotspot.
// Levelers: none, start-gap, start-gap-rand, security-refresh.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"aegis/internal/aegisrw"
	"aegis/internal/core"
	"aegis/internal/device"
	"aegis/internal/ecc"
	"aegis/internal/ecp"
	"aegis/internal/failcache"
	"aegis/internal/rdis"
	"aegis/internal/safer"
	"aegis/internal/scheme"
	"aegis/internal/wearlevel"
	"aegis/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aegissim:", err)
		os.Exit(1)
	}
}

// parseScheme resolves a scheme spec like "aegis-9x61" or "ecp-6".
func parseScheme(spec string, blockBits int) (scheme.Factory, error) {
	cache := failcache.Perfect{}
	switch {
	case spec == "hamming":
		return ecc.NewFactory(blockBits)
	case spec == "rdis-3":
		return rdis.NewFactory(blockBits, 3, cache)
	case strings.HasPrefix(spec, "safer-"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "safer-"))
		if err != nil {
			return nil, fmt.Errorf("bad scheme %q", spec)
		}
		return safer.NewFactory(blockBits, n)
	case strings.HasPrefix(spec, "ecp-"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "ecp-"))
		if err != nil {
			return nil, fmt.Errorf("bad scheme %q", spec)
		}
		return ecp.NewFactory(blockBits, n)
	case strings.HasPrefix(spec, "aegis-rw-"):
		b, err := parseAxB(strings.TrimPrefix(spec, "aegis-rw-"))
		if err != nil {
			return nil, fmt.Errorf("bad scheme %q: %v", spec, err)
		}
		return aegisrw.NewRWFactory(blockBits, b, cache)
	case strings.HasPrefix(spec, "aegis-"):
		b, err := parseAxB(strings.TrimPrefix(spec, "aegis-"))
		if err != nil {
			return nil, fmt.Errorf("bad scheme %q: %v", spec, err)
		}
		return core.NewFactory(blockBits, b)
	default:
		return nil, fmt.Errorf("unknown scheme %q", spec)
	}
}

// parseAxB extracts B from an "AxB" spec (the A is derived from the
// block size anyway) or accepts a bare prime.
func parseAxB(s string) (int, error) {
	if i := strings.IndexByte(s, 'x'); i >= 0 {
		s = s[i+1:]
	}
	b, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("cannot parse B from %q", s)
	}
	return b, nil
}

func parseWorkload(spec string, pages int, seed int64) (workload.Generator, error) {
	switch spec {
	case "uniform":
		return workload.Uniform{N: pages}, nil
	case "sequential":
		return &workload.Sequential{N: pages}, nil
	case "zipf":
		return workload.NewZipf(pages, 1.2, seed)
	case "hotspot":
		return workload.NewHotSpot(pages, 0.9, 0.1, seed)
	default:
		return nil, fmt.Errorf("unknown workload %q", spec)
	}
}

func parseLeveler(spec string, pages, psi int, seed int64) (wearlevel.Leveler, error) {
	switch spec {
	case "none":
		return nil, nil
	case "start-gap":
		return wearlevel.NewStartGap(pages, psi)
	case "start-gap-rand":
		return wearlevel.NewRandomizedStartGap(pages, psi, seed)
	case "security-refresh":
		return wearlevel.NewSecurityRefresh(pages, psi, seed)
	case "security-refresh-2l":
		regions := 8
		for regions*2 >= pages {
			regions /= 2
		}
		if regions < 2 {
			return nil, fmt.Errorf("device too small for two-level refresh")
		}
		return wearlevel.NewTwoLevelSecurityRefresh(pages, regions, psi, seed)
	case "perfect":
		return &wearlevel.Perfect{N: pages}, nil
	default:
		return nil, fmt.Errorf("unknown leveler %q", spec)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aegissim", flag.ContinueOnError)
	var (
		schemeSpec = fs.String("scheme", "aegis-9x61", "in-block recovery scheme (aegis-BxB, aegis-rw-BxB, safer-N, ecp-N, rdis-3, hamming)")
		wlSpec     = fs.String("workload", "zipf", "address stream: uniform, sequential, zipf, hotspot")
		levSpec    = fs.String("leveler", "start-gap-rand", "wear leveler: none, start-gap, start-gap-rand, security-refresh, security-refresh-2l, perfect")
		pages      = fs.Int("pages", 32, "physical pages (power of two for security-refresh)")
		pageBytes  = fs.Int("pagebytes", 1024, "page size in bytes")
		blockBits  = fs.Int("blockbits", 512, "data block size in bits")
		meanLife   = fs.Float64("meanlife", 1500, "mean cell endurance in bit-writes (scaled; see DESIGN.md)")
		psi        = fs.Int("psi", 32, "writes between wear-leveling steps")
		pairing    = fs.Bool("pairing", true, "enable OS Dynamic Pairing of retired pages")
		stopFrac   = fs.Float64("stop", 0.10, "stop when usable capacity falls below this fraction")
		seed       = fs.Int64("seed", 1, "RNG seed")
		list       = fs.Bool("list", false, "list accepted specs and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "schemes:   aegis-23x23 aegis-17x31 aegis-9x61 aegis-rw-9x61 safer-32 safer-64 ecp-6 rdis-3 hamming …")
		fmt.Fprintln(out, "workloads: uniform sequential zipf hotspot")
		fmt.Fprintln(out, "levelers:  none start-gap start-gap-rand security-refresh security-refresh-2l perfect")
		return nil
	}

	f, err := parseScheme(*schemeSpec, *blockBits)
	if err != nil {
		return err
	}
	gen, err := parseWorkload(*wlSpec, *pages, *seed)
	if err != nil {
		return err
	}
	lev, err := parseLeveler(*levSpec, *pages, *psi, *seed)
	if err != nil {
		return err
	}
	d, err := device.New(device.Config{
		Pages:     *pages,
		PageBytes: *pageBytes,
		BlockBits: *blockBits,
		MeanLife:  *meanLife,
		CoV:       0.25,
		Scheme:    f,
		Leveler:   lev,
		Workload:  gen,
		Pairing:   *pairing,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}

	levName := "none"
	if lev != nil {
		levName = lev.Name()
	}
	fmt.Fprintf(out, "device: %d pages × %d B, blocks of %d bits under %s\n", *pages, *pageBytes, *blockBits, f.Name())
	fmt.Fprintf(out, "stack:  %s traffic → %s → OS retirement (pairing=%v)\n\n", gen.Name(), levName, *pairing)
	fmt.Fprintf(out, "%12s  %8s  %8s  %8s  %8s  %10s\n", "page writes", "usable", "healthy", "pairs", "retired", "faults")

	report := func() {
		c := d.Capacity()
		fmt.Fprintf(out, "%12d  %7.0f%%  %8d  %8d  %8d  %10d\n",
			d.Stats().LogicalWrites, 100*d.UsableFraction(), c.Healthy, c.Pairs, c.Retired, d.TotalFaults())
	}
	report()
	for _, th := range []float64{0.95, 0.90, 0.75, 0.50, 0.25, *stopFrac} {
		if th < *stopFrac {
			continue
		}
		for d.UsableFraction() > th {
			if !d.Step() {
				break
			}
		}
		report()
	}
	st := d.Stats()
	fmt.Fprintf(out, "\ntotals: %d logical writes, %d redirected, %d pair-served, %d leveler migrations\n",
		st.LogicalWrites, st.Redirected, st.PairServed, st.MigrationWrites)
	return nil
}
