// Command aegisd is the simulation daemon: an HTTP service that runs
// Aegis Monte Carlo jobs on a bounded worker pool through the shard
// engine, so repeated and concurrent requests share work via the
// content-addressed shard cache.
//
// Usage:
//
//	aegisd -addr :8080 -cache-dir /var/cache/aegis -journal /var/cache/aegis/journal
//	aegisd -addr 127.0.0.1:0 -addr-file /tmp/aegisd.addr   # pick a free port
//	aegisd -version                                        # build + schema report
//
// With -journal the daemon is restart-survivable (even across kill -9):
// completed jobs come back with their original byte-identical results
// and interrupted jobs are re-enqueued, resuming from the shard cache.
// Multi-tenant quotas and fair scheduling key off the X-Aegis-Tenant
// request header (-tenant-queue, -tenant-inflight, -tenant-weights).
//
// API (see DESIGN.md §11 and §14, and README "Operating aegisd"):
//
//	POST /v1/jobs             submit a job       → 202 + status
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        job status, queue position, live progress
//	GET  /v1/jobs/{id}/result merged results     (schema aegis.job/v1)
//	GET  /v1/jobs/{id}/events live progress stream (Server-Sent Events)
//	GET  /v1/version          build identity + wire-format schemas
//	GET  /v1/healthz          liveness + queue/worker gauges
//	GET  /metrics             Prometheus text exposition
//	GET  /debug/aegis/progress, /debug/pprof/*, /debug/vars
//
// Logs are structured (log/slog, -log text|json) and correlated:
// every record a job produces carries the submitting request's ID, the
// job ID and its spec hash, and engine shard records add the shard key.
//
// On SIGINT/SIGTERM the daemon drains: no new jobs are accepted,
// running jobs stop at their next shard boundary, and every completed
// shard is already persisted — restarting aegisd with the same
// -cache-dir finishes interrupted jobs from the cache.
//
// Cluster mode (-role, see DESIGN.md §16 and README "Running a
// cluster"): "-role coordinator" serves the same job API but leases
// each job's shards out to registered workers instead of computing
// locally; "-role worker -coordinator http://host:port" computes leased
// shards and keeps its registration alive with heartbeats.  The default
// role, standalone, is the single-process daemon described above.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aegis/internal/cluster"
	"aegis/internal/obs"
	"aegis/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "aegisd:", err)
		os.Exit(1)
	}
}

// newLogger builds the daemon logger: text or JSON records at the
// requested level, written to w.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("-log %q: want text or json", format)
}

// parseTenantWeights parses the -tenant-weights flag: comma-separated
// name=weight pairs, e.g. "batch=1,interactive=4".
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := map[string]int{}
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-weights: want name=weight, got %q", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-tenant-weights: weight for %q must be a positive integer, got %q", name, val)
		}
		weights[name] = w
	}
	return weights, nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("aegisd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		addrFile  = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts wrapping port 0)")
		workers   = fs.Int("workers", 2, "jobs run concurrently")
		queue     = fs.Int("queue", 16, "max queued jobs before submissions get 429")
		cacheDir  = fs.String("cache-dir", "", "shard cache directory (persist + resume; empty = in-memory only)")
		journal   = fs.String("journal", "", "job journal file (schema aegis.journal/v1; empty = jobs die with the process)")
		journalMB = fs.Int64("journal-max-bytes", 0, "journal size bound; exceeding appends trigger compaction (0 = unbounded)")
		shards    = fs.Int("shards", 8, "default shards per job")
		engineW   = fs.Int("engine-workers", 0, "shards computed concurrently per job (0 = NumCPU)")
		jobTO     = fs.Duration("job-timeout", 0, "default per-job deadline (0 = none)")
		tenantQ   = fs.Int("tenant-queue", 0, "max queued jobs per tenant before 429 (0 = the full queue)")
		tenantIF  = fs.Int("tenant-inflight", 0, "max queued+running jobs per tenant before 429 (0 = unbounded)")
		tenantW   = fs.String("tenant-weights", "", "weighted round-robin shares, comma-separated name=weight pairs")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight shards on shutdown")
		logFormat = fs.String("log", "text", "log record format: text or json")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		version   = fs.Bool("version", false, "print build identity and schema versions as JSON, then exit")

		role       = fs.String("role", "standalone", "daemon role: standalone, coordinator or worker")
		coordURL   = fs.String("coordinator", "", "coordinator base URL (worker role; e.g. http://127.0.0.1:8080)")
		workerName = fs.String("worker-name", "", "worker fleet identity (worker role; default worker-<bound-addr>)")
		advertise  = fs.String("advertise", "", "URL the coordinator reaches this worker at (worker role; default http://<bound-addr>)")
		hbTTL      = fs.Duration("heartbeat-ttl", 10*time.Second, "worker registration TTL (coordinator role)")
		leaseTO    = fs.Duration("lease-timeout", 2*time.Minute, "per-lease compute deadline before re-issue (coordinator role)")
		leaseTries = fs.Int("lease-attempts", 4, "workers a shard lease is offered to before the job fails (coordinator role)")
		workerWait = fs.Duration("worker-wait", 30*time.Second, "how long a lease waits for a live worker before failing (coordinator role)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(serve.Version())
	}
	logger, err := newLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	if *role == "worker" {
		return runWorker(workerConfig{
			addr:        *addr,
			addrFile:    *addrFile,
			cacheDir:    *cacheDir,
			coordinator: *coordURL,
			name:        *workerName,
			advertise:   *advertise,
			drainTO:     *drainTO,
		}, logger)
	}
	if *role != "standalone" && *role != "coordinator" {
		return fmt.Errorf("-role %q: want standalone, coordinator or worker", *role)
	}

	weights, err := parseTenantWeights(*tenantW)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Options{
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheDir:          *cacheDir,
		JournalPath:       *journal,
		JournalMaxBytes:   *journalMB,
		Shards:            *shards,
		EngineWorkers:     *engineW,
		JobTimeout:        *jobTO,
		TenantQueueSlots:  *tenantQ,
		TenantMaxInFlight: *tenantIF,
		TenantWeights:     weights,
		Logger:            logger,
	})
	if err != nil {
		return err
	}
	if *role == "coordinator" {
		coord := cluster.NewCoordinator(cluster.Options{
			CacheDir:     *cacheDir,
			FanOut:       *engineW,
			HeartbeatTTL: *hbTTL,
			LeaseTimeout: *leaseTO,
			MaxAttempts:  *leaseTries,
			WorkerWait:   *workerWait,
			Metrics:      srv.Metrics(),
			Logger:       logger,
		})
		coord.Mount(srv)
		srv.SetRunner(coord)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	srv.Start()
	v := serve.Version()
	logger.Info("listening",
		slog.String("addr", bound),
		slog.String("role", *role),
		slog.Int("workers", *workers),
		slog.Int("queue", *queue),
		slog.Int("shards", *shards),
		slog.String("cache_dir", *cacheDir),
		slog.String("journal", *journal),
		slog.String("git_sha", v.GitSHA),
		slog.String("go_version", v.GoVersion))

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		logger.Info("draining", slog.String("signal", got.String()))
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if drainErr != nil {
		// Shard-boundary drain overran the budget: hard-cancel.
		logger.Warn("drain overran; cancelling running jobs", slog.String("error", drainErr.Error()))
		srv.Close()
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
	logger.Info("stopped")
	return nil
}

// workerConfig carries the worker role's flag subset.
type workerConfig struct {
	addr, addrFile, cacheDir string
	coordinator              string
	name, advertise          string
	drainTO                  time.Duration
}

// runWorker runs the worker role: serve the lease compute endpoint
// (plus /metrics and the debug surface), register with the coordinator,
// and heartbeat until signalled.
func runWorker(cfg workerConfig, logger *slog.Logger) error {
	if cfg.coordinator == "" {
		return fmt.Errorf("-role worker requires -coordinator")
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}
	if cfg.name == "" {
		cfg.name = "worker-" + bound
	}
	if cfg.advertise == "" {
		cfg.advertise = "http://" + bound
	}

	metrics := obs.NewMetrics()
	w := cluster.NewWorker(cluster.WorkerOptions{
		Name:     cfg.name,
		CacheDir: cfg.cacheDir,
		Metrics:  metrics,
		Logger:   logger.With(slog.String("worker", cfg.name)),
	})
	mux := http.NewServeMux()
	mux.Handle("/", w.Handler())
	obs.RegisterDebug(mux, metrics, nil, nil)
	httpSrv := &http.Server{Handler: mux}

	v := serve.Version()
	logger.Info("worker listening",
		slog.String("addr", bound),
		slog.String("name", cfg.name),
		slog.String("coordinator", cfg.coordinator),
		slog.String("advertise", cfg.advertise),
		slog.String("cache_dir", cfg.cacheDir),
		slog.String("git_sha", v.GitSHA))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 2)
	go func() { errCh <- httpSrv.Serve(ln) }()
	go func() { errCh <- w.Run(ctx, cfg.coordinator, cfg.advertise) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		logger.Info("worker stopping", slog.String("signal", got.String()))
	}
	cancel()
	sctx, scancel := context.WithTimeout(context.Background(), cfg.drainTO)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil {
		httpSrv.Close()
	}
	logger.Info("stopped")
	return nil
}
