// Command aegisd is the simulation daemon: an HTTP service that runs
// Aegis Monte Carlo jobs on a bounded worker pool through the shard
// engine, so repeated and concurrent requests share work via the
// content-addressed shard cache.
//
// Usage:
//
//	aegisd -addr :8080 -cache-dir /var/cache/aegis
//	aegisd -addr 127.0.0.1:0 -addr-file /tmp/aegisd.addr   # pick a free port
//
// API (see DESIGN.md §11 for the full contract):
//
//	POST /v1/jobs             submit a job       → 202 + status
//	GET  /v1/jobs             list jobs
//	GET  /v1/jobs/{id}        job status, queue position, live progress
//	GET  /v1/jobs/{id}/result merged results     (schema aegis.job/v1)
//	GET  /v1/healthz          liveness + queue/worker gauges
//	GET  /debug/aegis/progress, /debug/pprof/*
//
// On SIGINT/SIGTERM the daemon drains: no new jobs are accepted,
// running jobs stop at their next shard boundary, and every completed
// shard is already persisted — restarting aegisd with the same
// -cache-dir finishes interrupted jobs from the cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aegis/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "aegisd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("aegisd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening (for scripts wrapping port 0)")
		workers  = fs.Int("workers", 2, "jobs run concurrently")
		queue    = fs.Int("queue", 16, "max queued jobs before submissions get 429")
		cacheDir = fs.String("cache-dir", "", "shard cache directory (persist + resume; empty = in-memory only)")
		shards   = fs.Int("shards", 8, "default shards per job")
		engineW  = fs.Int("engine-workers", 0, "shards computed concurrently per job (0 = NumCPU)")
		jobTO    = fs.Duration("job-timeout", 0, "default per-job deadline (0 = none)")
		drainTO  = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight shards on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := serve.New(serve.Options{
		Workers:       *workers,
		QueueDepth:    *queue,
		CacheDir:      *cacheDir,
		Shards:        *shards,
		EngineWorkers: *engineW,
		JobTimeout:    *jobTO,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("write -addr-file: %w", err)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	srv.Start()
	fmt.Fprintf(os.Stderr, "aegisd: listening on %s (workers=%d queue=%d shards=%d cache=%q)\n",
		bound, *workers, *queue, *shards, *cacheDir)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "aegisd: %v: draining (in-flight shards finish and persist)\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainErr := srv.Drain(ctx)
	if drainErr != nil {
		// Shard-boundary drain overran the budget: hard-cancel.
		fmt.Fprintf(os.Stderr, "aegisd: %v; cancelling running jobs\n", drainErr)
		srv.Close()
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		httpSrv.Close()
	}
	fmt.Fprintln(os.Stderr, "aegisd: stopped")
	return nil
}
