package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aegis/pkg/client"
)

// Cluster chaos suite: run the real aegisd binary as a coordinator plus
// a worker fleet, kill -9 a worker while it holds a lease, and prove
// the coordinator steals the lease, completes the job, and answers with
// the same bytes a standalone daemon produces for the same spec.

// startCoordinator launches a coordinator-role daemon sized so a fleet
// of three workers all hold leases at once (fan-out 3, 4 chunky
// shards): killing any worker mid-job is then guaranteed to interrupt
// an in-flight lease.
func startCoordinator(t *testing.T, dir string) *daemonProc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	logs, err := os.CreateTemp(t.TempDir(), "coordinator-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(binary(t),
		"-role", "coordinator",
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "1",
		"-engine-workers", "3",
		"-shards", "4",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-heartbeat-ttl", "5s",
		"-worker-wait", "30s",
		"-log", "json",
	)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd, logs: logs}
	t.Cleanup(func() { p.kill(); logs.Close() })
	awaitAddr(t, p, addrFile)
	return p
}

// startWorkerProc launches a worker-role daemon registered at the
// coordinator.
func startWorkerProc(t *testing.T, coordURL, name, dir string) *daemonProc {
	t.Helper()
	logs, err := os.CreateTemp(t.TempDir(), name+"-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(binary(t),
		"-role", "worker",
		"-coordinator", coordURL,
		"-addr", "127.0.0.1:0",
		"-worker-name", name,
		"-cache-dir", filepath.Join(dir, "cache-"+name),
		"-log", "json",
	)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd, logs: logs}
	t.Cleanup(func() { p.kill(); logs.Close() })
	return p
}

func awaitAddr(t *testing.T, p *daemonProc, addrFile string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for p.base == "" {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			p.base = "http://" + strings.TrimSpace(string(b))
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote -addr-file; logs:\n%s", p.tail())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// awaitFleet polls the coordinator's worker listing until n workers are
// registered.
func awaitFleet(t *testing.T, coordURL string, n int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(coordURL + "/v1/workers")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Count(string(body), `"name"`) >= n {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet incomplete: %d workers not registered in 30s", n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// awaitLogLine polls a daemon's log file until one line contains every
// given substring.
func awaitLogLine(t *testing.T, p *daemonProc, subs ...string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		data, _ := os.ReadFile(p.logs.Name())
		for _, line := range strings.Split(string(data), "\n") {
			ok := true
			for _, sub := range subs {
				if !strings.Contains(line, sub) {
					ok = false
					break
				}
			}
			if ok {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("log line %v never appeared; logs:\n%s", subs, p.tail())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// scrapeMetric reads one un-labeled counter from GET /metrics.
func scrapeMetric(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v
			}
		}
	}
	return 0
}

// canonicalResult strips the two fields that legitimately differ
// between daemons — wall-clock time and the cache directory path — for
// byte comparison.
func canonicalResult(t *testing.T, raw []byte) []byte {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	doc["elapsed_seconds"] = 0.0
	if sh, ok := doc["sharding"].(map[string]any); ok {
		delete(sh, "cache_dir")
	}
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterChaosWorkerKill is the cluster satellite's end-to-end
// kill -9 test:
//
//  1. a coordinator and three worker processes form a fleet; a job of
//     4 chunky shards is submitted with fan-out 3, so all three workers
//     hold in-flight leases while work remains
//  2. once the first shard lands in the coordinator's cache, one worker
//     is killed with SIGKILL — by construction it holds a lease
//  3. the coordinator steals the dead worker's lease
//     (aegis_cluster_leases_stolen_total >= 1), the job completes, and
//     its result is byte-identical to a standalone daemon's answer for
//     the same spec
func TestClusterChaosWorkerKill(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	coord := startCoordinator(t, dir)
	var workers []*daemonProc
	for i := 0; i < 3; i++ {
		workers = append(workers, startWorkerProc(t, coord.base, fmt.Sprintf("chaos-w%d", i), dir))
	}
	awaitFleet(t, coord.base, 3)

	cc, err := client.New(coord.base, client.Options{PollInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	spec := client.JobSpec{Kind: "blocks", Scheme: "aegis:11", BlockBits: 64, Trials: 24000, Seed: 6}
	st, err := cc.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until chaos-w1 is issued a lease — the coordinator logs
	// issuance before the compute round trip starts, and each shard
	// runs for seconds, so the kill is guaranteed to land on an
	// in-flight lease.
	awaitLogLine(t, coord, `"msg":"lease issued"`, `"worker":"chaos-w1"`)

	workers[1].kill() // SIGKILL: no goodbye, no deregistration, lease in flight

	final, err := cc.Wait(ctx, st.ID)
	if err != nil {
		t.Fatalf("wait after worker kill: %v\ncoordinator logs:\n%s", err, coord.tail())
	}
	if final.State != client.StateDone {
		t.Fatalf("job ended %q: %s\ncoordinator logs:\n%s", final.State, final.Error, coord.tail())
	}
	clusterRaw, err := cc.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	if n := scrapeMetric(t, coord.base, "aegis_cluster_leases_stolen_total"); n < 1 {
		t.Errorf("aegis_cluster_leases_stolen_total = %v, want >= 1\ncoordinator logs:\n%s", n, coord.tail())
	}
	if n := scrapeMetric(t, coord.base, "aegis_cluster_workers_lost_total"); n < 1 {
		t.Errorf("aegis_cluster_workers_lost_total = %v, want >= 1", n)
	}

	// Standalone daemon, fresh state, same spec and sizing: the answer
	// must match the cluster's byte for byte.
	standalone := startStandalone(t, t.TempDir())
	sc, err := client.New(standalone.base, client.Options{PollInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sst, err := sc.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sst, err = sc.Wait(ctx, sst.ID); err != nil || sst.State != client.StateDone {
		t.Fatalf("standalone run: %v state %v\n%s", err, sst, standalone.tail())
	}
	standaloneRaw, err := sc.Result(ctx, sst.ID)
	if err != nil {
		t.Fatal(err)
	}

	cw, cg := canonicalResult(t, standaloneRaw), canonicalResult(t, clusterRaw)
	if !bytes.Equal(cw, cg) {
		t.Errorf("cluster result diverges from standalone\nstandalone: %s\ncluster:    %s", cw, cg)
	}
}

// startStandalone launches a default-role daemon sized identically to
// startCoordinator so the result documents are comparable.
func startStandalone(t *testing.T, dir string) *daemonProc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	logs, err := os.CreateTemp(t.TempDir(), "standalone-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(binary(t),
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "1",
		"-engine-workers", "3",
		"-shards", "4",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-log", "json",
	)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd, logs: logs}
	t.Cleanup(func() { p.kill(); logs.Close() })
	awaitAddr(t, p, addrFile)
	return p
}
