package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"aegis/pkg/client"
)

// Crash-recovery suite: kill -9 the real aegisd binary mid-job and
// prove the journal keeps the daemon's promises across the restart —
// finished jobs answer with byte-identical results, interrupted jobs
// resume from the shard cache under their original IDs.  An in-process
// Server cannot stand in here: only a separate process can be killed
// without running a single line of cleanup.

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// binary builds aegisd once per test run.
func binary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "aegisd-crash-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "aegisd")
		cmd := exec.Command("go", "build", "-o", buildBin, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// daemonProc is one aegisd process under test.
type daemonProc struct {
	cmd  *exec.Cmd
	base string
	logs *os.File
}

// startDaemon launches aegisd against the state directory (cache +
// journal live in dir, so consecutive starts share them) and waits for
// it to listen.
func startDaemon(t *testing.T, dir string) *daemonProc {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	logs, err := os.CreateTemp(t.TempDir(), "daemon-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(binary(t),
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-workers", "1",
		"-engine-workers", "1", // sequential shards: a running job has runway to be killed under
		"-shards", "12",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-journal", filepath.Join(dir, "journal"),
		"-log", "json",
	)
	cmd.Stdout = logs
	cmd.Stderr = logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd, logs: logs}
	t.Cleanup(func() { p.kill(); logs.Close() })

	deadline := time.Now().Add(15 * time.Second)
	for p.base == "" {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			p.base = "http://" + strings.TrimSpace(string(b))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote -addr-file; logs:\n%s", p.tail())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return p
}

// kill sends SIGKILL — the crash under test: no handler runs, no
// buffer is flushed by the process, nothing is drained.
func (p *daemonProc) kill() {
	if p.cmd.Process != nil {
		p.cmd.Process.Signal(syscall.SIGKILL)
		p.cmd.Wait()
	}
}

func (p *daemonProc) tail() string {
	data, _ := os.ReadFile(p.logs.Name())
	if len(data) > 4096 {
		data = data[len(data)-4096:]
	}
	return string(data)
}

// cacheFiles counts shard files currently persisted.
func cacheFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	filepath.WalkDir(filepath.Join(dir, "cache"), func(path string, d fs.DirEntry, err error) error {
		if err == nil && d != nil && !d.IsDir() {
			n++
		}
		return nil
	})
	return n
}

// TestCrashRecovery is the end-to-end kill -9 test the tentpole
// promises:
//
//  1. job A runs to completion; its result bytes are captured
//  2. job B is mid-run — some shards cached, most not — when the
//     daemon is killed with SIGKILL
//  3. a restarted daemon on the same journal + cache serves A's result
//     byte-identically without re-running it, and resumes B from the
//     cached shards to a normal completion under its original ID
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	p1 := startDaemon(t, dir)
	c1, err := client.New(p1.base, client.Options{Tenant: "crash", PollInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Job A: small, runs to completion before the crash.
	stA, err := c1.Submit(ctx, client.JobSpec{Kind: "blocks", Scheme: "aegis:11", BlockBits: 64, Trials: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stA, err = c1.Wait(ctx, stA.ID); err != nil || stA.State != client.StateDone {
		t.Fatalf("job A: %v state %v\n%s", err, stA, p1.tail())
	}
	resultA, err := c1.Result(ctx, stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	baseline := cacheFiles(t, dir)

	// Job B: ~12 sequential shards of ~2000 trials each (seconds of
	// work) — killed once at least two shards are safely in the cache.
	stB, err := c1.Submit(ctx, client.JobSpec{Kind: "blocks", Scheme: "aegis:11", BlockBits: 64, Trials: 24000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for cacheFiles(t, dir) < baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("job B never persisted shards; logs:\n%s", p1.tail())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st, err := c1.Status(ctx, stB.ID); err != nil || st.Terminal() {
		t.Fatalf("job B finished before the crash (state %v, err %v) — raise its trials", st, err)
	}

	p1.kill()

	// Restart on the same journal and cache.
	p2 := startDaemon(t, dir)
	c2, err := client.New(p2.base, client.Options{Tenant: "crash", PollInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// A: served from the journal, byte for byte.  A re-run could never
	// reproduce elapsed_seconds exactly, so equality proves replay.
	stA2, err := c2.Status(ctx, stA.ID)
	if err != nil || stA2.State != client.StateDone || stA2.Tenant != "crash" {
		t.Fatalf("job A after restart: %v %+v\n%s", err, stA2, p2.tail())
	}
	resultA2, err := c2.Result(ctx, stA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultA, resultA2) {
		t.Fatalf("job A result changed across restart:\n before: %s\n after:  %s", resultA, resultA2)
	}

	// B: re-enqueued under its original ID, completed from the cache.
	stB2, err := c2.Wait(ctx, stB.ID)
	if err != nil {
		t.Fatalf("job B after restart: %v\n%s", err, p2.tail())
	}
	if stB2.State != client.StateDone {
		t.Fatalf("job B ended %q: %s\n%s", stB2.State, stB2.Error, p2.tail())
	}
	rawB, err := c2.Result(ctx, stB.ID)
	if err != nil {
		t.Fatal(err)
	}
	var resB struct {
		Schema   string `json:"schema"`
		ID       string `json:"id"`
		Sharding struct {
			Shards      int   `json:"shards"`
			CacheHits   int64 `json:"cache_hits"`
			CacheMisses int64 `json:"cache_misses"`
		} `json:"sharding"`
	}
	if err := json.Unmarshal(rawB, &resB); err != nil {
		t.Fatal(err)
	}
	if resB.Schema != "aegis.job/v1" || resB.ID != stB.ID {
		t.Fatalf("job B result identity: %+v", resB)
	}
	// Resume proof: the shards persisted before the kill were loaded,
	// not recomputed.
	if resB.Sharding.CacheHits < 2 {
		t.Fatalf("job B recomputed everything (hits %d, misses %d) — resume from cache failed",
			resB.Sharding.CacheHits, resB.Sharding.CacheMisses)
	}

	// The restarted daemon logged the replay.
	fullLog, err := os.ReadFile(p2.logs.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fullLog), "journal replayed") {
		t.Fatalf("no replay log line; logs:\n%s", p2.tail())
	}
}

// TestCrashBeforeDispatch: killing the daemon with jobs still queued
// loses nothing — every accepted-but-unstarted job is re-enqueued and
// completed by the restart.
func TestCrashBeforeDispatch(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	p1 := startDaemon(t, dir)
	c1, err := client.New(p1.base, client.Options{PollInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// One long job holds the single worker; the rest must still be
	// queued when the kill lands.
	var ids []string
	first, err := c1.Submit(ctx, client.JobSpec{Kind: "blocks", Scheme: "aegis:11", BlockBits: 64, Trials: 24000, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, first.ID)
	for i := 0; i < 3; i++ {
		st, err := c1.Submit(ctx, client.JobSpec{Kind: "blocks", Scheme: "aegis:11", BlockBits: 64, Trials: 50, Seed: int64(30 + i)})
		if err != nil {
			t.Fatal(err)
		}
		if st.State != client.StateQueued {
			t.Fatalf("job %s is %q, want queued behind the long job", st.ID, st.State)
		}
		ids = append(ids, st.ID)
	}
	p1.kill()

	p2 := startDaemon(t, dir)
	c2, err := client.New(p2.base, client.Options{PollInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, err := c2.Wait(ctx, id)
		if err != nil {
			t.Fatalf("job %s after restart: %v\n%s", id, err, p2.tail())
		}
		if st.State != client.StateDone {
			t.Fatalf("job %s ended %q: %s", id, st.State, st.Error)
		}
	}
}
