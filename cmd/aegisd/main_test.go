package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestRunBadAddr: an unbindable address must surface as an error, not a
// hang.
func TestRunBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "256.256.256.256:0"}); err == nil {
		t.Fatal("expected listen error")
	}
}

// TestDaemonEndToEnd boots the daemon on a free port, runs one job
// through the HTTP API, and shuts it down with SIGTERM — the same
// lifecycle `make serve-smoke` exercises in CI.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-workers", "1",
			"-shards", "4",
			"-cache-dir", filepath.Join(dir, "cache"),
			"-drain-timeout", "10s",
		})
	}()

	var base string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(addrFile); err == nil {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if base == "" {
		t.Fatal("daemon never wrote -addr-file")
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":4}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || status.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, status)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + status.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if status.State == "done" {
			break
		}
		if status.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q", status.State)
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err = http.Get(base + "/v1/jobs/" + status.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result struct {
		Schema string `json:"schema"`
		Blocks []struct {
			Lifetime int64 `json:"lifetime"`
		} `json:"blocks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if result.Schema != "aegis.job/v1" {
		t.Fatalf("result schema %q", result.Schema)
	}
	if len(result.Blocks) != 4 {
		t.Fatalf("got %d block results, want 4", len(result.Blocks))
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}
	fmt.Fprintln(os.Stderr) // keep -v output tidy after the daemon's stderr lines
}
