package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a concurrency-safe log sink: the daemon's slog handler
// writes from HTTP handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRunBadAddr: an unbindable address must surface as an error, not a
// hang.
func TestRunBadAddr(t *testing.T) {
	if err := run([]string{"-addr", "256.256.256.256:0"}, io.Discard, io.Discard); err == nil {
		t.Fatal("expected listen error")
	}
}

// TestVersionFlag: -version prints the build/schema report and exits
// cleanly without binding a port.
func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	var v struct {
		Service string            `json:"service"`
		GitSHA  string            `json:"git_sha"`
		Schemas map[string]string `json:"schemas"`
	}
	if err := json.Unmarshal([]byte(out.String()), &v); err != nil {
		t.Fatalf("unparseable -version output %q: %v", out.String(), err)
	}
	if v.Service != "aegisd" || v.GitSHA == "" {
		t.Fatalf("incomplete version report: %+v", v)
	}
	if v.Schemas["job"] != "aegis.job/v1" || v.Schemas["shard"] != "aegis.shard/v1" {
		t.Fatalf("schema report: %+v", v.Schemas)
	}
}

// TestBadLogFlags: malformed -log / -log-level surface as flag errors.
func TestBadLogFlags(t *testing.T) {
	if err := run([]string{"-log", "yaml"}, io.Discard, io.Discard); err == nil {
		t.Fatal("expected error for -log yaml")
	}
	if err := run([]string{"-log-level", "loud"}, io.Discard, io.Discard); err == nil {
		t.Fatal("expected error for -log-level loud")
	}
}

// TestDaemonEndToEnd boots the daemon on a free port, runs one job
// through the HTTP API, and shuts it down with SIGTERM — the same
// lifecycle `make serve-smoke` exercises in CI.
func TestDaemonEndToEnd(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	var logBuf syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-workers", "1",
			"-shards", "4",
			"-cache-dir", filepath.Join(dir, "cache"),
			"-drain-timeout", "10s",
			"-log", "json",
		}, io.Discard, &logBuf)
	}()

	var base string
	for i := 0; i < 200; i++ {
		if b, err := os.ReadFile(addrFile); err == nil {
			base = "http://" + strings.TrimSpace(string(b))
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if base == "" {
		t.Fatal("daemon never wrote -addr-file")
	}

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"kind":"blocks","scheme":"aegis:11","block_bits":64,"trials":4}`
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || status.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, status)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + status.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if status.State == "done" {
			break
		}
		if status.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job state %q", status.State)
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err = http.Get(base + "/v1/jobs/" + status.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var result struct {
		Schema string `json:"schema"`
		Blocks []struct {
			Lifetime int64 `json:"lifetime"`
		} `json:"blocks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&result); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if result.Schema != "aegis.job/v1" {
		t.Fatalf("result schema %q", result.Schema)
	}
	if len(result.Blocks) != 4 {
		t.Fatalf("got %d block results, want 4", len(result.Blocks))
	}

	// The operational surface is mounted on the same mux.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{"aegis_http_requests_total", "aegis_scheme_writes_total", "aegis_build_info"} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("daemon /metrics missing %q", want)
		}
	}
	resp, err = http.Get(base + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version: %d", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain after SIGTERM")
	}

	// The structured log shows the full lifecycle.
	logs := logBuf.String()
	for _, want := range []string{`"msg":"listening"`, `"msg":"job accepted"`, `"msg":"job done"`, `"msg":"draining"`, `"msg":"stopped"`} {
		if !strings.Contains(logs, want) {
			t.Fatalf("daemon log missing %s:\n%s", want, logs)
		}
	}
}
