// Command benchdiff is the machine-readable benchmark pipeline: it runs
// the repository's Go benchmarks, normalizes the output into a
// BENCH_<date>.json file, and compares two such files with a regression
// threshold — exiting non-zero when any benchmark slowed down past it.
//
// Usage:
//
//	benchdiff -run -out BENCH_2026-08-06.json
//	benchdiff -run -bench 'Table1|Fig5' -benchtime 2x -pkg . -out BENCH_new.json
//	benchdiff -old BENCH_baseline.json -new BENCH_new.json -threshold 20
//	benchdiff -run -old BENCH_baseline.json -out BENCH_new.json   (run, then compare)
//	benchdiff -run -notes "bench host: 8-core xeon" -out BENCH_baseline.json
//
// The comparison matches benchmarks by name (GOMAXPROCS suffix
// stripped), reports the ns/op and allocs/op delta of every common
// benchmark, and fails when a ns/op delta exceeds -threshold percent or
// an allocs/op delta exceeds -alloc-threshold percent.  Allocation
// counts are deterministic, so the alloc gate holds even on noisy
// shared runners where wall-clock thresholds must stay loose.
// Benchmarks that appear on only one side are reported but never fail
// the run.  CI keeps BENCH_baseline.json checked in; refresh it with
// `make bench-baseline` on a quiet machine and commit the result
// alongside perf-affecting changes (see DESIGN.md §"Benchmark
// pipeline" and §12 "Hot path and memory discipline").
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"aegis/internal/obs"
)

// BenchSchema identifies the normalized benchmark file format.
const BenchSchema = "aegis.bench/v1"

// File is one normalized benchmark run.
type File struct {
	Schema    string    `json:"schema"`
	CreatedAt time.Time `json:"created_at"`
	GoVersion string    `json:"go_version"`
	GOOS      string    `json:"goos"`
	GOARCH    string    `json:"goarch"`
	NumCPU    int       `json:"num_cpu"`
	GitSHA    string    `json:"git_sha"`
	Benchtime string    `json:"benchtime,omitempty"`
	// Notes is free-form provenance supplied at record time (-notes):
	// what host class produced the file, why it was refreshed.
	Notes      string      `json:"notes,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one normalized benchmark result line.
type Benchmark struct {
	// Name is the benchmark identity used for matching, the Go name
	// without the "Benchmark" prefix and -GOMAXPROCS suffix.
	Name string `json:"name"`
	// FullName is the raw name as printed by `go test`.
	FullName    string  `json:"full_name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		doRun          = fs.Bool("run", false, "run the Go benchmarks and write a normalized JSON file")
		bench          = fs.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime      = fs.String("benchtime", "1x", "value passed to go test -benchtime")
		pkg            = fs.String("pkg", ".", "package pattern passed to go test")
		count          = fs.Int("count", 1, "value passed to go test -count")
		outPath        = fs.String("out", "", "output path for -run (default BENCH_<date>.json)")
		notes          = fs.String("notes", "", "free-form provenance recorded in the -run output file")
		oldPath        = fs.String("old", "", "baseline benchmark JSON to compare against")
		newPath        = fs.String("new", "", "fresh benchmark JSON to compare (defaults to -out after -run)")
		threshold      = fs.Float64("threshold", 20, "fail when ns/op regresses by more than this percent")
		allocThreshold = fs.Float64("alloc-threshold", 10, "fail when allocs/op regresses by more than this percent")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*doRun && *oldPath == "" {
		return fmt.Errorf("nothing to do: pass -run to record benchmarks and/or -old/-new to compare (see -h)")
	}

	if *outPath == "" {
		*outPath = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	if *doRun {
		if err := runBenchmarks(*bench, *benchtime, *pkg, *count, *outPath, *notes, out); err != nil {
			return err
		}
		if *newPath == "" {
			*newPath = *outPath
		}
	}
	if *oldPath != "" {
		if *newPath == "" {
			return fmt.Errorf("-old given without -new (or -run)")
		}
		return compareFiles(*oldPath, *newPath, *threshold, *allocThreshold, out)
	}
	return nil
}

// runBenchmarks executes `go test -bench` and writes the normalized
// results to outPath.
func runBenchmarks(bench, benchtime, pkg string, count int, outPath, notes string, out io.Writer) error {
	args := []string{
		"test", "-run", "NONE", "-bench", bench,
		"-benchtime", benchtime, "-benchmem",
		"-count", strconv.Itoa(count), pkg,
	}
	fmt.Fprintf(out, "benchdiff: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = io.MultiWriter(&buf, out)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	benchmarks, err := ParseBenchOutput(&buf)
	if err != nil {
		return err
	}
	if len(benchmarks) == 0 {
		return fmt.Errorf("no benchmark results parsed from go test output")
	}
	f := &File{
		Schema:     BenchSchema,
		CreatedAt:  time.Now().UTC(),
		GoVersion:  obs.GoVersion(),
		GOOS:       obs.GOOS(),
		GOARCH:     obs.GOARCH(),
		NumCPU:     obs.NumCPU(),
		GitSHA:     obs.GitSHA(),
		Benchtime:  benchtime,
		Notes:      notes,
		Benchmarks: benchmarks,
	}
	if err := writeFile(outPath, f); err != nil {
		return err
	}
	fmt.Fprintf(out, "benchdiff: wrote %d benchmark(s) to %s\n", len(benchmarks), outPath)
	return nil
}

// benchLine matches standard `go test -bench` result lines, e.g.
//
//	BenchmarkTable1-8   120   9731 ns/op   1024 B/op   17 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-(\d+))?\s+(\d+)\s+([0-9.e+]+) ns/op(?:\s+([0-9.e+]+) B/op)?(?:\s+([0-9.e+]+) allocs/op)?`)

// ParseBenchOutput extracts benchmark results from `go test -bench`
// output.  Repeated names (-count > 1, or the same benchmark in several
// packages) are averaged.
func ParseBenchOutput(r io.Reader) ([]Benchmark, error) {
	type acc struct {
		Benchmark
		n int
	}
	byName := make(map[string]*acc)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		b := Benchmark{FullName: m[1]}
		b.Name = strings.TrimPrefix(m[1], "Benchmark")
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
			b.FullName = fmt.Sprintf("%s-%d", m[1], b.Procs)
		}
		b.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		var err error
		if b.NsPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
			return nil, fmt.Errorf("parse ns/op in %q: %w", sc.Text(), err)
		}
		if m[5] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			b.AllocsPerOp, _ = strconv.ParseFloat(m[6], 64)
		}
		if a, ok := byName[b.Name]; ok {
			a.NsPerOp += b.NsPerOp
			a.BytesPerOp += b.BytesPerOp
			a.AllocsPerOp += b.AllocsPerOp
			a.Iterations += b.Iterations
			a.n++
		} else {
			byName[b.Name] = &acc{Benchmark: b, n: 1}
			order = append(order, b.Name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		a := byName[name]
		a.NsPerOp /= float64(a.n)
		a.BytesPerOp /= float64(a.n)
		a.AllocsPerOp /= float64(a.n)
		out = append(out, a.Benchmark)
	}
	return out, nil
}

// errRegression marks a comparison that exceeded the threshold; main
// turns it into a non-zero exit.
var errRegression = fmt.Errorf("benchmark regression past threshold")

// compareFiles diffs two normalized benchmark files and fails when any
// common benchmark's ns/op or allocs/op regressed past its threshold.
func compareFiles(oldPath, newPath string, thresholdPct, allocThresholdPct float64, out io.Writer) error {
	oldF, err := loadFile(oldPath)
	if err != nil {
		return err
	}
	newF, err := loadFile(newPath)
	if err != nil {
		return err
	}
	if oldF.Schema != newF.Schema {
		return obs.SchemaMismatch(oldPath, oldF.Schema, newPath, newF.Schema,
			"re-record one side with this benchdiff (`benchdiff -run`) so both files share a schema")
	}
	report := Compare(oldF, newF, thresholdPct, allocThresholdPct)
	fmt.Fprint(out, report.Format(oldPath, newPath, thresholdPct, allocThresholdPct))
	if len(report.Regressions) > 0 {
		return fmt.Errorf("%w: %s", errRegression, strings.Join(report.Regressions, ", "))
	}
	return nil
}

// Delta is one benchmark's old/new comparison.
type Delta struct {
	Name       string
	OldNs      float64
	NewNs      float64
	Pct        float64 // (new-old)/old in percent
	Regression bool    // ns/op past the time threshold

	OldAllocs       float64
	NewAllocs       float64
	AllocPct        float64 // (new-old)/old in percent; +Inf when old was 0
	AllocRegression bool    // allocs/op past the alloc threshold
}

// Report is the outcome of comparing two benchmark files.
type Report struct {
	// OldSchema and NewSchema are the input files' schema versions,
	// echoed in the report header.
	OldSchema   string
	NewSchema   string
	Deltas      []Delta
	OnlyOld     []string
	OnlyNew     []string
	Regressions []string
}

// Compare matches benchmarks by name and computes ns/op and allocs/op
// deltas against their respective thresholds.
func Compare(oldF, newF *File, thresholdPct, allocThresholdPct float64) *Report {
	oldBy := make(map[string]Benchmark, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := make(map[string]Benchmark, len(newF.Benchmarks))
	for _, b := range newF.Benchmarks {
		newBy[b.Name] = b
	}
	r := &Report{OldSchema: oldF.Schema, NewSchema: newF.Schema}
	for _, b := range newF.Benchmarks {
		o, ok := oldBy[b.Name]
		if !ok {
			r.OnlyNew = append(r.OnlyNew, b.Name)
			continue
		}
		d := Delta{
			Name:  b.Name,
			OldNs: o.NsPerOp, NewNs: b.NsPerOp,
			OldAllocs: o.AllocsPerOp, NewAllocs: b.AllocsPerOp,
		}
		if o.NsPerOp > 0 {
			d.Pct = 100 * (b.NsPerOp - o.NsPerOp) / o.NsPerOp
		}
		d.Regression = d.Pct > thresholdPct
		if d.Regression {
			r.Regressions = append(r.Regressions, fmt.Sprintf("%s (+%.1f%%)", d.Name, d.Pct))
		}
		// Allocation counts are deterministic, so a benchmark that
		// allocated nothing in the baseline and allocates now is always
		// a regression, not a division-by-zero corner.
		switch {
		case o.AllocsPerOp > 0:
			d.AllocPct = 100 * (b.AllocsPerOp - o.AllocsPerOp) / o.AllocsPerOp
			d.AllocRegression = d.AllocPct > allocThresholdPct
		case b.AllocsPerOp > 0:
			d.AllocPct = math.Inf(1)
			d.AllocRegression = true
		}
		if d.AllocRegression {
			r.Regressions = append(r.Regressions,
				fmt.Sprintf("%s (allocs %.0f → %.0f)", d.Name, d.OldAllocs, d.NewAllocs))
		}
		r.Deltas = append(r.Deltas, d)
	}
	for _, b := range oldF.Benchmarks {
		if _, ok := newBy[b.Name]; !ok {
			r.OnlyOld = append(r.OnlyOld, b.Name)
		}
	}
	sort.Slice(r.Deltas, func(i, j int) bool { return r.Deltas[i].Pct > r.Deltas[j].Pct })
	sort.Strings(r.OnlyOld)
	sort.Strings(r.OnlyNew)
	return r
}

// Format renders the comparison as an aligned text table.
func (r *Report) Format(oldPath, newPath string, thresholdPct, allocThresholdPct float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchdiff: %s (%s) vs %s (%s), thresholds: ns/op +%.1f%%, allocs/op +%.1f%%\n",
		oldPath, r.OldSchema, newPath, r.NewSchema, thresholdPct, allocThresholdPct)
	width := len("benchmark")
	for _, d := range r.Deltas {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}
	fmt.Fprintf(&sb, "%-*s  %14s  %14s  %8s  %12s  %12s  %8s\n", width, "benchmark",
		"old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	for _, d := range r.Deltas {
		mark := ""
		switch {
		case d.Regression && d.AllocRegression:
			mark = "  REGRESSION (time, allocs)"
		case d.Regression:
			mark = "  REGRESSION (time)"
		case d.AllocRegression:
			mark = "  REGRESSION (allocs)"
		}
		allocPct := fmt.Sprintf("%+7.1f%%", d.AllocPct)
		if math.IsInf(d.AllocPct, 1) {
			allocPct = "    +inf"
		}
		fmt.Fprintf(&sb, "%-*s  %14.0f  %14.0f  %+7.1f%%  %12.0f  %12.0f  %s%s\n",
			width, d.Name, d.OldNs, d.NewNs, d.Pct, d.OldAllocs, d.NewAllocs, allocPct, mark)
	}
	for _, name := range r.OnlyOld {
		fmt.Fprintf(&sb, "%-*s  only in %s\n", width, name, oldPath)
	}
	for _, name := range r.OnlyNew {
		fmt.Fprintf(&sb, "%-*s  only in %s\n", width, name, newPath)
	}
	fmt.Fprintf(&sb, "%d compared, %d regression(s)\n", len(r.Deltas), len(r.Regressions))
	return sb.String()
}

// loadFile reads and validates a normalized benchmark file.
func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	// Accept any aegis.bench/* version here so compareFiles can name
	// both sides' schemas in its mismatch error; anything else is not a
	// benchmark file at all.
	if !strings.HasPrefix(f.Schema, "aegis.bench/") {
		return nil, fmt.Errorf("%s has schema %q, want %q", path, f.Schema, BenchSchema)
	}
	return &f, nil
}

// writeFile serializes a benchmark file as indented JSON.
func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}
