package main

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: aegis
cpu: Some CPU @ 2.40GHz
BenchmarkTable1-8        	     120	      9731 ns/op	    1024 B/op	      17 allocs/op
BenchmarkFig5            	       2	 510000000 ns/op
BenchmarkFig8-8          	       3	 333000000 ns/op	 5000000 B/op	   90000 allocs/op
PASS
ok  	aegis	2.345s
`

func TestParseBenchOutput(t *testing.T) {
	bs, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(bs), bs)
	}
	b := bs[0]
	if b.Name != "Table1" || b.FullName != "BenchmarkTable1-8" || b.Procs != 8 {
		t.Fatalf("name parsing wrong: %+v", b)
	}
	if b.Iterations != 120 || b.NsPerOp != 9731 || b.BytesPerOp != 1024 || b.AllocsPerOp != 17 {
		t.Fatalf("metric parsing wrong: %+v", b)
	}
	if bs[1].Name != "Fig5" || bs[1].Procs != 0 || bs[1].BytesPerOp != 0 {
		t.Fatalf("plain line parsing wrong: %+v", bs[1])
	}
}

func TestParseBenchOutputAveragesRepeats(t *testing.T) {
	repeated := "BenchmarkX-4 10 100 ns/op\nBenchmarkX-4 10 300 ns/op\n"
	bs, err := ParseBenchOutput(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || bs[0].NsPerOp != 200 {
		t.Fatalf("averaging wrong: %+v", bs)
	}
}

func benchFile(ns map[string]float64) *File {
	f := &File{
		Schema:    BenchSchema,
		CreatedAt: time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC),
		GoVersion: "go1.22",
	}
	// Deterministic order for the test.
	for _, name := range []string{"Fig5", "Fig8", "Table1", "New"} {
		v, ok := ns[name]
		if !ok {
			continue
		}
		f.Benchmarks = append(f.Benchmarks, Benchmark{Name: name, FullName: "Benchmark" + name, Iterations: 1, NsPerOp: v})
	}
	return f
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldF := benchFile(map[string]float64{"Fig5": 100, "Fig8": 100, "Table1": 100})
	newF := benchFile(map[string]float64{"Fig5": 150, "Fig8": 105, "New": 50})
	r := Compare(oldF, newF, 20, 10)
	if len(r.Regressions) != 1 || !strings.HasPrefix(r.Regressions[0], "Fig5") {
		t.Fatalf("regressions = %v, want [Fig5 ...]", r.Regressions)
	}
	if len(r.Deltas) != 2 {
		t.Fatalf("deltas = %+v, want 2", r.Deltas)
	}
	// Sorted by delta: worst first.
	if r.Deltas[0].Name != "Fig5" || !r.Deltas[0].Regression || r.Deltas[0].Pct != 50 {
		t.Fatalf("worst delta wrong: %+v", r.Deltas[0])
	}
	if r.Deltas[1].Name != "Fig8" || r.Deltas[1].Regression {
		t.Fatalf("within-threshold delta wrong: %+v", r.Deltas[1])
	}
	if len(r.OnlyOld) != 1 || r.OnlyOld[0] != "Table1" {
		t.Fatalf("OnlyOld = %v", r.OnlyOld)
	}
	if len(r.OnlyNew) != 1 || r.OnlyNew[0] != "New" {
		t.Fatalf("OnlyNew = %v", r.OnlyNew)
	}
	text := r.Format("old.json", "new.json", 20, 10)
	if !strings.Contains(text, "REGRESSION") || !strings.Contains(text, "2 compared, 1 regression(s)") {
		t.Fatalf("format wrong:\n%s", text)
	}
}

// allocFile builds a benchmark file with fixed ns/op and the given
// allocs/op per name, for exercising the allocation gate in isolation.
func allocFile(allocs map[string]float64) *File {
	f := &File{Schema: BenchSchema, GoVersion: "go1.22"}
	for _, name := range []string{"Fig5", "Fig8", "Table1"} {
		v, ok := allocs[name]
		if !ok {
			continue
		}
		f.Benchmarks = append(f.Benchmarks, Benchmark{
			Name: name, FullName: "Benchmark" + name, Iterations: 1, NsPerOp: 100, AllocsPerOp: v,
		})
	}
	return f
}

func TestCompareFlagsAllocRegressions(t *testing.T) {
	oldF := allocFile(map[string]float64{"Fig5": 1000, "Fig8": 1000, "Table1": 0})
	newF := allocFile(map[string]float64{"Fig5": 1200, "Fig8": 1050, "Table1": 3})
	r := Compare(oldF, newF, 20, 10)
	if len(r.Regressions) != 2 {
		t.Fatalf("regressions = %v, want Fig5 and Table1", r.Regressions)
	}
	byName := make(map[string]Delta)
	for _, d := range r.Deltas {
		byName[d.Name] = d
	}
	if d := byName["Fig5"]; !d.AllocRegression || d.AllocPct != 20 || d.Regression {
		t.Fatalf("Fig5 delta wrong: %+v", d)
	}
	if d := byName["Fig8"]; d.AllocRegression || d.AllocPct != 5 {
		t.Fatalf("Fig8 delta wrong: %+v", d)
	}
	// Zero → nonzero allocs is always a regression, whatever the threshold.
	if d := byName["Table1"]; !d.AllocRegression || !math.IsInf(d.AllocPct, 1) {
		t.Fatalf("Table1 delta wrong: %+v", d)
	}
	text := r.Format("old.json", "new.json", 20, 10)
	if !strings.Contains(text, "REGRESSION (allocs)") {
		t.Fatalf("alloc regression not marked:\n%s", text)
	}
}

// TestAllocGateCLI drives the CLI path the tentpole requires: a pure
// allocs/op regression (ns/op flat) must exit non-zero under
// -alloc-threshold, and a loose threshold must let it pass.
func TestAllocGateCLI(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_baseline.json")
	newPath := filepath.Join(dir, "BENCH_new.json")
	if err := writeFile(oldPath, allocFile(map[string]float64{"Fig5": 1000})); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(newPath, allocFile(map[string]float64{"Fig5": 1500})); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "200", "-alloc-threshold", "10"}, &out)
	if !errors.Is(err, errRegression) {
		t.Fatalf("alloc regression not flagged (err = %v); output:\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "200", "-alloc-threshold", "60"}, &out); err != nil {
		t.Fatalf("within-threshold alloc compare failed: %v\n%s", err, out.String())
	}
}

// TestNotesRoundTrip pins the provenance field: notes written at record
// time must survive the JSON round trip.
func TestNotesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	f := benchFile(map[string]float64{"Fig5": 100})
	f.Notes = "bench host: 1-core container"
	if err := writeFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := loadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Notes != f.Notes {
		t.Fatalf("notes = %q, want %q", got.Notes, f.Notes)
	}
}

// TestCompareCLIExitsNonZeroOnRegression drives the full CLI path the
// acceptance criterion requires: comparing two files where one benchmark
// slowed past the threshold must return an error (→ non-zero exit).
func TestCompareCLIExitsNonZeroOnRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "BENCH_baseline.json")
	newPath := filepath.Join(dir, "BENCH_new.json")
	if err := writeFile(oldPath, benchFile(map[string]float64{"Fig5": 100})); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(newPath, benchFile(map[string]float64{"Fig5": 200})); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "20"}, &out)
	if err == nil {
		t.Fatalf("regression not flagged; output:\n%s", out.String())
	}
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want errRegression", err)
	}

	// Within threshold → success.
	out.Reset()
	if err := run([]string{"-old", oldPath, "-new", newPath, "-threshold", "150"}, &out); err != nil {
		t.Fatalf("within-threshold compare failed: %v\n%s", err, out.String())
	}
}

func TestCompareRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	bad := benchFile(map[string]float64{"Fig5": 100})
	bad.Schema = "other/v9"
	path := filepath.Join(dir, "bad.json")
	if err := writeFile(path, bad); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.json")
	if err := writeFile(good, benchFile(map[string]float64{"Fig5": 100})); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-old", path, "-new", good}, &bytes.Buffer{}); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

// TestFormatEchoesSchemas pins the report header: it must name the
// schema of each input so a reader can tell what produced the files.
func TestFormatEchoesSchemas(t *testing.T) {
	oldF := benchFile(map[string]float64{"Fig5": 100})
	newF := benchFile(map[string]float64{"Fig5": 101})
	r := Compare(oldF, newF, 20, 10)
	if r.OldSchema != BenchSchema || r.NewSchema != BenchSchema {
		t.Fatalf("report schemas = %q/%q, want %q", r.OldSchema, r.NewSchema, BenchSchema)
	}
	text := r.Format("old.json", "new.json", 20, 10)
	want := "benchdiff: old.json (" + BenchSchema + ") vs new.json (" + BenchSchema + ")"
	if !strings.Contains(text, want) {
		t.Fatalf("header missing schema echo:\n%s", text)
	}
}

// TestCompareSchemaMismatch checks two different aegis.bench versions
// are refused with an error that tells the user how to fix it.
func TestCompareSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	oldF := benchFile(map[string]float64{"Fig5": 100})
	oldF.Schema = "aegis.bench/v0"
	oldPath := filepath.Join(dir, "old.json")
	if err := writeFile(oldPath, oldF); err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "new.json")
	if err := writeFile(newPath, benchFile(map[string]float64{"Fig5": 100})); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-old", oldPath, "-new", newPath}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("mixed schemas accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, "schema mismatch") ||
		!strings.Contains(msg, "aegis.bench/v0") || !strings.Contains(msg, BenchSchema) ||
		!strings.Contains(msg, "re-record") {
		t.Fatalf("mismatch error unhelpful: %v", err)
	}
}

func TestNoArgsIsAnError(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("benchdiff with no mode flags should fail")
	}
}
