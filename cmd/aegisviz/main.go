// Command aegisviz renders an A×B Aegis partition layout as ASCII: the
// rectangle of the Cartesian plane with group IDs under a chosen slope
// (the paper's Figure 2), and optionally the colliding slope of a pair of
// bits (the §2.4 ROM lookup).
//
// Usage:
//
//	aegisviz -bits 32 -b 7 -slope 1
//	aegisviz -bits 512 -b 23 -slope 4
//	aegisviz -bits 512 -b 61 -pair 17,401
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"aegis/internal/plane"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aegisviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aegisviz", flag.ContinueOnError)
	var (
		bits  = fs.Int("bits", 32, "data block size in bits")
		b     = fs.Int("b", 7, "prime B of the A×B scheme")
		slope = fs.Int("slope", 0, "partition configuration (slope k) to render")
		pair  = fs.String("pair", "", "two bit offsets 'x,y': print the slope on which they collide")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, err := plane.NewLayout(*bits, *b)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Aegis %s layout for a %d-bit block: %d slopes, %d groups of ≤%d bits, hard FTC %d (rw: %d), overhead %d bits\n\n",
		l, *bits, l.Slopes(), l.Groups(), l.A, l.HardFTC(), l.HardFTCRW(), l.OverheadBits())

	if *pair != "" {
		parts := strings.SplitN(*pair, ",", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad -pair %q, want 'x,y'", *pair)
		}
		x1, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		x2, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad -pair %q", *pair)
		}
		if x1 < 0 || x1 >= l.N || x2 < 0 || x2 >= l.N || x1 == x2 {
			return fmt.Errorf("pair must be two distinct offsets in [0,%d)", l.N)
		}
		if k, ok := l.CollidingSlope(x1, x2); ok {
			fmt.Fprintf(out, "bits %d and %d share a group only under slope k=%d\n", x1, x2, k)
		} else {
			fmt.Fprintf(out, "bits %d and %d are in the same rectangle column: they never share a group\n", x1, x2)
		}
		return nil
	}

	if *slope < 0 || *slope >= l.Slopes() {
		return fmt.Errorf("slope %d out of range [0,%d)", *slope, l.Slopes())
	}
	fmt.Fprintf(out, "slope k=%d (cells show the group ID of each bit; '·' = unmapped rectangle point)\n\n", *slope)
	width := len(fmt.Sprintf("%d", l.Groups()-1)) + 1
	for bRow := l.B - 1; bRow >= 0; bRow-- {
		fmt.Fprintf(out, "b=%3d |", bRow)
		for a := 0; a < l.A; a++ {
			if x, ok := l.Offset(a, bRow); ok {
				fmt.Fprintf(out, " %*d", width, l.Group(x, *slope))
			} else {
				fmt.Fprintf(out, " %*s", width, "·")
			}
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "       +%s\n        ", strings.Repeat("-", (width+1)*l.A))
	for a := 0; a < l.A; a++ {
		fmt.Fprintf(out, " %*d", width, a)
	}
	fmt.Fprintln(out, "   (a)")
	return nil
}
