package main

import (
	"strings"
	"testing"
)

func render(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

func TestFigure2Rendering(t *testing.T) {
	out, err := render(t, "-bits", "32", "-b", "7", "-slope", "0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Aegis 5x7 layout") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "hard FTC 4") {
		t.Fatalf("hard FTC missing:\n%s", out)
	}
	// Three unmapped points are rendered as dots.
	if got := strings.Count(out, "·"); got != 3+1 { // +1 for the legend
		t.Fatalf("unmapped dots = %d, want 4 (3 cells + legend):\n%s", got, out)
	}
	// Slope 0: row b=2 is entirely group 2.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "b=  2") {
			if !strings.Contains(line, "2  2  2  2  2") {
				t.Fatalf("slope-0 row not constant: %q", line)
			}
		}
	}
}

func TestPairLookup(t *testing.T) {
	out, err := render(t, "-bits", "512", "-b", "61", "-pair", "17,401")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "share a group only under slope k=") {
		t.Fatalf("pair output wrong:\n%s", out)
	}
	// Same-column pair: offsets 0 and 1 are both in column a=0.
	out, err = render(t, "-bits", "512", "-b", "61", "-pair", "0,1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "never share a group") {
		t.Fatalf("same-column output wrong:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-bits", "512", "-b", "24"},                // non-prime B
		{"-bits", "32", "-b", "7", "-slope", "7"},   // slope out of range
		{"-bits", "32", "-b", "7", "-pair", "3"},    // malformed pair
		{"-bits", "32", "-b", "7", "-pair", "a,b"},  // non-numeric pair
		{"-bits", "32", "-b", "7", "-pair", "5,5"},  // identical offsets
		{"-bits", "32", "-b", "7", "-pair", "5,99"}, // out of range
		{"-bits", "512", "-b", "19"},                // A > B
	}
	for _, args := range cases {
		if _, err := render(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
