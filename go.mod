module aegis

go 1.22
