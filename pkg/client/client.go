// Package client is a dependency-free Go client for aegisd, the Aegis
// simulation daemon.  It covers the full v1 API: submit, status,
// result, blocking wait, the live SSE event stream, and version
// discovery.
//
// The client retries 429 and 503 answers with jittered exponential
// backoff, honouring the daemon's Retry-After hint when one is sent,
// and plumbs a correlation request ID (X-Request-Id) through every
// call so client-side failures can be matched to daemon log records.
// All methods take a context and abort promptly when it ends.
//
//	c, _ := client.New("http://127.0.0.1:8080", client.Options{Tenant: "ci"})
//	st, err := c.Submit(ctx, client.JobSpec{Kind: "blocks", Scheme: "aegis:61"})
//	...
//	st, err = c.Wait(ctx, st.ID)
//	raw, err := c.Result(ctx, st.ID)
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Options configures a Client.  The zero value is usable.
type Options struct {
	// Tenant is sent as X-Aegis-Tenant on every request (empty = the
	// daemon's default tenant).
	Tenant string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// RetryMax bounds retries after the first attempt on 429/503
	// (default 4; negative disables retries).
	RetryMax int
	// RetryBase is the first backoff step; later steps double, with
	// ±50% jitter (default 100ms).  A Retry-After hint from the daemon
	// overrides the computed delay.
	RetryBase time.Duration
	// PollInterval is Wait's status-poll period (default 100ms).
	PollInterval time.Duration
	// RequestID mints correlation IDs (default: random 8-byte hex).
	RequestID func() string
}

// Client talks to one aegisd instance.  It is safe for concurrent use.
type Client struct {
	base string
	opts Options
}

// New builds a client for the daemon at baseURL (scheme + host, e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts Options) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q: want scheme://host[:port]", baseURL)
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	if opts.RetryMax == 0 {
		opts.RetryMax = 4
	}
	if opts.RetryMax < 0 {
		opts.RetryMax = 0
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 100 * time.Millisecond
	}
	if opts.RequestID == nil {
		opts.RequestID = randomID
	}
	return &Client{base: strings.TrimRight(u.String(), "/"), opts: opts}, nil
}

func randomID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "client-unknown"
	}
	return hex.EncodeToString(b[:])
}

// Submit posts a job.  A 202 returns the new job's status; a 409
// (identical job already live) returns an *APIError whose JobID names
// it — callers typically Wait on that ID instead of failing:
//
//	st, err := c.Submit(ctx, spec)
//	var apiErr *client.APIError
//	if errors.As(err, &apiErr) && apiErr.IsDuplicate() {
//	    st, err = c.Wait(ctx, apiErr.JobID)
//	}
func (c *Client) Submit(ctx context.Context, spec JobSpec) (*JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encode spec: %w", err)
	}
	var st JobStatus
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches a finished job's result document (schema aegis.job/v1)
// as raw JSON — raw so byte-level comparisons against other runs of the
// same spec are possible.
func (c *Client) Result(ctx context.Context, id string) (json.RawMessage, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read result: %w", err)
	}
	return raw, nil
}

// Version fetches the daemon's build identity and schema versions.
func (c *Client) Version(ctx context.Context) (*VersionInfo, error) {
	var v VersionInfo
	if err := c.doJSON(ctx, http.MethodGet, "/v1/version", nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// Wait polls a job until it reaches a terminal state (or ctx ends) and
// returns the final status.  A failed or aborted job is not a transport
// error: err is nil and the status says what happened.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	ticker := time.NewTicker(c.opts.PollInterval)
	defer ticker.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
	}
}

// doJSON runs a request and decodes a 2xx JSON body into out.
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, out any) error {
	resp, err := c.do(ctx, method, path, body, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
	}
	return nil
}

// do runs one request with retry on 429/503.  Any other non-2xx answer
// becomes an *APIError.  The caller owns the returned body.
func (c *Client) do(ctx context.Context, method, path string, body []byte, header http.Header) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bodyReader(body))
		if err != nil {
			return nil, fmt.Errorf("client: build request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.opts.Tenant != "" {
			req.Header.Set(TenantHeader, c.opts.Tenant)
		}
		req.Header.Set(RequestIDHeader, c.opts.RequestID())
		for k, vs := range header {
			req.Header[k] = vs
		}
		resp, err := c.opts.HTTPClient.Do(req)
		if err != nil {
			// Transport errors are not retried: the daemon never saw
			// the request, and for POSTs a blind resend could double-
			// submit across a half-open connection.
			return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
		}
		if resp.StatusCode/100 == 2 {
			return resp, nil
		}
		apiErr := decodeAPIError(resp)
		resp.Body.Close()
		retryable := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= c.opts.RetryMax {
			return nil, apiErr
		}
		lastErr = apiErr
		delay := c.backoff(attempt, apiErr.RetryAfter)
		select {
		case <-ctx.Done():
			return nil, errors.Join(ctx.Err(), lastErr)
		case <-time.After(delay):
		}
	}
}

func bodyReader(body []byte) io.Reader {
	if body == nil {
		return nil
	}
	return bytes.NewReader(body)
}

// backoff picks the next retry delay: the daemon's Retry-After hint
// when present, else RetryBase·2^attempt with ±50% deterministic-free
// jitter (derived from the monotonic clock, so the package needs no
// random source and concurrent clients still decorrelate).
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	d := float64(c.opts.RetryBase) * math.Pow(2, float64(attempt))
	// 0.5–1.5× jitter from the clock's sub-millisecond noise.
	frac := float64(time.Now().UnixNano()%1000) / 1000
	d *= 0.5 + frac
	if max := float64(10 * time.Second); d > max {
		d = max
	}
	return time.Duration(d)
}

// decodeAPIError folds a non-2xx response into an *APIError.
func decodeAPIError(resp *http.Response) *APIError {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var body struct {
		Field     string `json:"field"`
		Message   string `json:"error"`
		RequestID string `json:"request_id"`
		ID        string `json:"id"`
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err == nil && json.Unmarshal(raw, &body) == nil && body.Message != "" {
		apiErr.Field = body.Field
		apiErr.Message = body.Message
		apiErr.RequestID = body.RequestID
		apiErr.JobID = body.ID
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	if apiErr.RequestID == "" {
		apiErr.RequestID = resp.Header.Get(RequestIDHeader)
	}
	return apiErr
}
