package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// Cluster transport: the raw lease and registration calls the aegisd
// cluster role uses (see DESIGN.md §16).  Payloads stay json.RawMessage
// so the package remains dependency-free — the schemas (aegis.lease/v1)
// are owned by the daemon's internal/cluster package, and this client
// just moves their bytes with the same retry, correlation-ID and error
// discipline as the job API.

// ComputeShard posts a lease document to a worker's compute endpoint
// and returns the raw LeaseResult.  Coordinators call this with retries
// disabled (Options.RetryMax < 0): a failed call must surface at once
// so the lease can be re-issued to another worker.
func (c *Client) ComputeShard(ctx context.Context, lease json.RawMessage) (json.RawMessage, error) {
	return c.doRaw(ctx, http.MethodPost, "/v1/cluster/compute", lease)
}

// RegisterWorker posts a worker registration to a coordinator
// (POST /v1/workers) and returns the raw acknowledgement, which carries
// the heartbeat TTL.  Re-posting the same name refreshes the
// registration.
func (c *Client) RegisterWorker(ctx context.Context, registration json.RawMessage) (json.RawMessage, error) {
	return c.doRaw(ctx, http.MethodPost, "/v1/workers", registration)
}

// WorkerHeartbeat refreshes a worker's registration lease.  A 404 means
// the coordinator no longer knows the worker (it expired, or the
// coordinator restarted) — re-register.
func (c *Client) WorkerHeartbeat(ctx context.Context, name string) error {
	_, err := c.doRaw(ctx, http.MethodPost, "/v1/workers/"+url.PathEscape(name)+"/heartbeat", nil)
	return err
}

// Workers fetches the coordinator's live fleet listing (GET /v1/workers)
// as raw JSON.
func (c *Client) Workers(ctx context.Context) (json.RawMessage, error) {
	return c.doRaw(ctx, http.MethodGet, "/v1/workers", nil)
}

// doRaw runs one request and returns the 2xx body verbatim.
func (c *Client) doRaw(ctx context.Context, method, path string, body []byte) (json.RawMessage, error) {
	resp, err := c.do(ctx, method, path, body, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: read %s %s response: %w", method, path, err)
	}
	return raw, nil
}
