package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"aegis/internal/serve"
	"aegis/pkg/client"
)

// Tests run against a real in-process aegisd (internal/serve) where the
// behaviour under test is the daemon's, and against httptest stubs
// where it is the client's (retry, disconnect handling).

var smallSpec = client.JobSpec{Kind: "blocks", Scheme: "aegis:11", BlockBits: 64, Trials: 6, Seed: 5}

func daemon(t *testing.T, opts serve.Options) string {
	t.Helper()
	s, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			s.Close()
		}
	})
	return ts.URL
}

func newClient(t *testing.T, base string, opts client.Options) *client.Client {
	t.Helper()
	c, err := client.New(base, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSubmitWaitResult(t *testing.T) {
	base := daemon(t, serve.Options{Workers: 1, Shards: 2, CacheDir: t.TempDir()})
	c := newClient(t, base, client.Options{Tenant: "ci", PollInterval: 10 * time.Millisecond})
	ctx := context.Background()

	st, err := c.Submit(ctx, smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Tenant != "ci" {
		t.Fatalf("submitted as %q tenant %q", st.ID, st.Tenant)
	}

	st, err = c.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateDone {
		t.Fatalf("job ended %q: %s", st.State, st.Error)
	}

	raw, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		Schema string `json:"schema"`
		ID     string `json:"id"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Schema != "aegis.job/v1" || res.ID != st.ID {
		t.Fatalf("result schema %q id %q", res.Schema, res.ID)
	}

	// Resubmitting the identical spec while done jobs have left the
	// dedup window runs again; resubmitting a queued/running one yields
	// the duplicate answer — covered in TestSubmitDuplicate.
	v, err := c.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Service != "aegisd" || v.Schemas["job"] == "" {
		t.Fatalf("version: %+v", v)
	}
}

func TestSubmitDuplicate(t *testing.T) {
	// Unstarted daemon: the first submission stays queued, so the
	// second is a guaranteed duplicate.
	s, err := serve.New(serve.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	c := newClient(t, ts.URL, client.Options{})

	st, err := c.Submit(context.Background(), smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(context.Background(), smallSpec)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || !apiErr.IsDuplicate() || apiErr.JobID != st.ID {
		t.Fatalf("duplicate submit: %v, want 409 pointing at %s", err, st.ID)
	}
}

func TestValidationError(t *testing.T) {
	base := daemon(t, serve.Options{Workers: 1})
	c := newClient(t, base, client.Options{})
	_, err := c.Submit(context.Background(), client.JobSpec{Kind: "nonsense"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest || apiErr.Field != "kind" {
		t.Fatalf("bad spec: %v", err)
	}
	if apiErr.RequestID == "" {
		t.Fatal("error carries no request ID")
	}
}

// TestRetryHonorsRetryAfter: 429 answers are retried after the daemon's
// hint, and the eventual success is returned.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j1","tenant":"default","state":"queued"}`)
	}))
	defer ts.Close()

	c := newClient(t, ts.URL, client.Options{RetryBase: time.Millisecond})
	st, err := c.Submit(context.Background(), smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j1" || calls.Load() != 3 {
		t.Fatalf("job %q after %d calls, want j1 after 3", st.ID, calls.Load())
	}
}

// TestRetryExhausted: a daemon that never relents surfaces the last 429
// after RetryMax+1 attempts.
func TestRetryExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer ts.Close()

	c := newClient(t, ts.URL, client.Options{RetryMax: 2, RetryBase: time.Millisecond})
	_, err := c.Submit(context.Background(), smallSpec)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exhausted retries: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("%d attempts, want 3 (1 + RetryMax)", calls.Load())
	}
}

// TestRetryRespectsContext: cancellation during backoff aborts the
// retry loop promptly with the context error.
func TestRetryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}))
	defer ts.Close()

	c := newClient(t, ts.URL, client.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, smallSpec)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled retry: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — the 30s Retry-After was not interruptible", elapsed)
	}
}

// TestEventsToCompletion: the stream yields progress frames and a final
// done event, then io.EOF.
func TestEventsToCompletion(t *testing.T) {
	base := daemon(t, serve.Options{Workers: 1, Shards: 2, CacheDir: t.TempDir(),
		StreamInterval: 10 * time.Millisecond})
	c := newClient(t, base, client.Options{})
	ctx := context.Background()

	st, err := c.Submit(ctx, smallSpec)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := c.Events(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	sawProgress, sawDone := false, false
	for {
		ev, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Name {
		case "progress":
			sawProgress = true
		case "done":
			sawDone = true
			final, err := ev.Status()
			if err != nil {
				t.Fatal(err)
			}
			if final.ID != st.ID || !final.Terminal() {
				t.Fatalf("done event: id %q state %q", final.ID, final.State)
			}
		}
	}
	if !sawProgress || !sawDone {
		t.Fatalf("stream: progress %v done %v, want both", sawProgress, sawDone)
	}
	// After EOF the stream stays EOF.
	if _, err := stream.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

// TestEventsMidStreamDisconnect: the server dropping the connection
// before the done event surfaces io.ErrUnexpectedEOF, not a silent end.
func TestEventsMidStreamDisconnect(t *testing.T) {
	frames := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "id: 1\nevent: progress\ndata: {\"state\":\"running\"}\n\n")
		w.(http.Flusher).Flush()
		<-frames // hold the stream open until the test cuts it
	}))
	defer ts.Close()

	c := newClient(t, ts.URL, client.Options{})
	stream, err := c.Events(context.Background(), "j1")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	ev, err := stream.Next()
	if err != nil || ev.Name != "progress" {
		t.Fatalf("first event: %v %v", ev, err)
	}
	// Cut every open connection mid-stream, as a crashing daemon would.
	ts.CloseClientConnections()
	close(frames)
	if _, err := stream.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("after disconnect: %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestEventsStreamCap: an over-subscribed daemon answers 503 with
// Retry-After; with retries disabled the client surfaces it as an
// APIError carrying the hint.
func TestEventsStreamCap(t *testing.T) {
	base := daemon(t, serve.Options{Workers: 1, MaxStreams: 1,
		StreamInterval: 10 * time.Millisecond, StreamHeartbeat: 10 * time.Millisecond})
	c := newClient(t, base, client.Options{RetryMax: -1})
	ctx := context.Background()

	// A slow job holds the one stream slot open.
	st, err := c.Submit(ctx, client.JobSpec{Kind: "blocks", Scheme: "aegis:11", BlockBits: 64, Trials: 5000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Events(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.Next(); err != nil {
		t.Fatal(err) // slot is confirmed held
	}

	_, err = c.Events(ctx, st.ID)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream: %v, want 503", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("503 carries no Retry-After hint: %+v", apiErr)
	}

	// Releasing the slot admits the next subscriber.
	first.Close()
	var second *client.EventStream
	deadline := time.Now().Add(5 * time.Second)
	for {
		second, err = c.Events(ctx, st.ID)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	second.Close()
}

// TestRequestIDPlumbing: the client's generated ID reaches the server;
// the server's echo lands on API errors.
func TestRequestIDPlumbing(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(client.RequestIDHeader))
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"id":"j1"}`)
	}))
	defer ts.Close()

	c := newClient(t, ts.URL, client.Options{RequestID: func() string { return "fixed-rid" }, Tenant: "acme"})
	if _, err := c.Status(context.Background(), "j1"); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "fixed-rid" {
		t.Fatalf("server saw request ID %q", got.Load())
	}
}
