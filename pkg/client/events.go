package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
)

// Event is one Server-Sent Event from a job's live stream.
type Event struct {
	// ID is the stream sequence number the daemon assigned.
	ID string
	// Name is the event type: "progress" while the job runs, "done"
	// exactly once as the final event.
	Name string
	// Data is the event's JSON payload: a progress frame, or the full
	// final JobStatus on the "done" event.
	Data json.RawMessage
}

// Status decodes the event payload as a JobStatus — the shape of the
// "done" event.
func (e *Event) Status() (*JobStatus, error) {
	var st JobStatus
	if err := json.Unmarshal(e.Data, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// EventStream iterates a job's SSE stream (GET /v1/jobs/{id}/events).
// Close it when done; Next closes it automatically at end of stream.
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
	done bool
}

// Events opens the live event stream of a job.  The daemon sends a
// "progress" event per interval and a final "done" event; Next returns
// io.EOF after "done" and io.ErrUnexpectedEOF if the connection drops
// before the stream completed — callers distinguish a finished job from
// a lost daemon by which sentinel they get.
//
// An over-subscribed daemon answers 503 (surfaced as *APIError with its
// Retry-After hint) — this call retries it like any other request.
// Cancelling ctx tears the stream down and surfaces the cancellation
// from the pending or next Next call.
func (c *Client) Events(ctx context.Context, id string) (*EventStream, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/events", nil,
		http.Header{"Accept": []string{"text/event-stream"}})
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &EventStream{body: resp.Body, sc: sc}, nil
}

// Next blocks for the next event.  It returns io.EOF once the stream
// ended cleanly (after the "done" event) and io.ErrUnexpectedEOF if the
// server went away mid-stream.  Heartbeat comments are skipped.
func (s *EventStream) Next() (*Event, error) {
	if s.done {
		return nil, io.EOF
	}
	ev := &Event{}
	sawField := false
	for s.sc.Scan() {
		line := s.sc.Bytes()
		switch {
		case len(line) == 0: // blank line: dispatch if a field was seen
			if sawField {
				if ev.Name == "done" {
					s.done = true
					s.Close()
				}
				return ev, nil
			}
		case line[0] == ':': // comment (heartbeat): skip
		default:
			field, value, _ := bytes.Cut(line, []byte(":"))
			value = bytes.TrimPrefix(value, []byte(" "))
			switch string(field) {
			case "id":
				ev.ID = string(value)
				sawField = true
			case "event":
				ev.Name = string(value)
				sawField = true
			case "data":
				// Per the SSE grammar multiple data lines concatenate
				// with a newline; the daemon sends one per event.
				if len(ev.Data) > 0 {
					ev.Data = append(ev.Data, '\n')
				}
				ev.Data = append(ev.Data, value...)
				sawField = true
			}
		}
	}
	// The scanner stopped without a dispatched event: the stream ended
	// before "done" — a scan error, a mid-frame cut, or a clean close
	// all mean the subscriber cannot know the job's fate.  Context
	// cancellation keeps its sentinel so callers can errors.Is it.
	s.Close()
	if err := s.sc.Err(); errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// Close tears the stream down.  Safe to call more than once.
func (s *EventStream) Close() error {
	return s.body.Close()
}
