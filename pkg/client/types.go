package client

import (
	"encoding/json"
	"fmt"
	"time"
)

// Wire types mirroring aegisd's JSON (internal/serve).  They are
// declared here rather than imported so the package stays a
// self-contained, dependency-free client: vendor this directory and the
// Go standard library is all you need.

// Job states as reported by the daemon.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	StateAborted = "aborted"
)

// TenantHeader carries the tenant name on every request; aegisd
// accounts quotas and fair scheduling per tenant.
const TenantHeader = "X-Aegis-Tenant"

// RequestIDHeader carries the correlation ID; aegisd echoes it and
// stamps it on every log record the request's job produces.
const RequestIDHeader = "X-Request-Id"

// JobSpec is the POST /v1/jobs payload.  Zero-valued fields take the
// daemon's defaults; {Kind: "blocks", Scheme: "aegis:61"} is a complete
// spec.
type JobSpec struct {
	Kind           string   `json:"kind"`
	Scheme         string   `json:"scheme"`
	Preset         string   `json:"preset,omitempty"`
	Trials         int      `json:"trials,omitempty"`
	BlockBits      int      `json:"block_bits,omitempty"`
	PageBytes      int      `json:"page_bytes,omitempty"`
	Seed           int64    `json:"seed,omitempty"`
	MaxFaults      int      `json:"max_faults,omitempty"`
	WritesPerStep  int      `json:"writes_per_step,omitempty"`
	Bias           *float64 `json:"bias,omitempty"`
	Shards         int      `json:"shards,omitempty"`
	Lanes          int      `json:"lanes,omitempty"`
	TimeoutSeconds float64  `json:"timeout_seconds,omitempty"`
}

// JobStatus is the daemon's job-status document (submit and get).
type JobStatus struct {
	ID            string     `json:"id"`
	Tenant        string     `json:"tenant"`
	State         string     `json:"state"`
	QueuePosition int        `json:"queue_position"`
	Error         string     `json:"error,omitempty"`
	CreatedAt     time.Time  `json:"created_at"`
	StartedAt     *time.Time `json:"started_at,omitempty"`
	FinishedAt    *time.Time `json:"finished_at,omitempty"`
	ResultURL     string     `json:"result_url,omitempty"`
	// Progress is the live progress snapshot, kept raw so this package
	// does not chase the daemon's counter schema.
	Progress json.RawMessage `json:"progress"`
	Request  json.RawMessage `json:"request"`
}

// Terminal reports whether the job can no longer change state.
func (s *JobStatus) Terminal() bool {
	switch s.State {
	case StateDone, StateFailed, StateAborted:
		return true
	}
	return false
}

// VersionInfo is the GET /v1/version response.
type VersionInfo struct {
	Service   string            `json:"service"`
	GitSHA    string            `json:"git_sha"`
	GoVersion string            `json:"go_version"`
	OS        string            `json:"os"`
	Arch      string            `json:"arch"`
	Schemas   map[string]string `json:"schemas"`
}

// APIError is any non-2xx daemon response: the HTTP status, the
// structured error body, and — when the daemon sent them — the backoff
// hint and the ID of the already-running duplicate job.
type APIError struct {
	StatusCode int
	// Field names the offending request field on validation failures.
	Field   string
	Message string
	// RequestID is the correlation ID the daemon assigned; quote it to
	// find the failure in the daemon's logs.
	RequestID string
	// JobID is set on 409: an identical job is already live under this
	// ID — poll or wait on it instead of resubmitting.
	JobID string
	// RetryAfter is the daemon's parsed Retry-After hint (zero if the
	// response carried none).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	msg := e.Message
	if msg == "" {
		msg = "request failed"
	}
	if e.Field != "" {
		msg = e.Field + ": " + msg
	}
	return fmt.Sprintf("aegisd: %d: %s", e.StatusCode, msg)
}

// IsDuplicate reports whether the error is a 409 duplicate-submission
// answer; JobID then names the live job.
func (e *APIError) IsDuplicate() bool { return e.StatusCode == 409 && e.JobID != "" }
